// The shared incremental coverage/load engine every solver layer runs on.
//
// A CoverageEngine holds the same combinatorial object as setcover::SetSystem
// — a weighted, grouped set system over a dense element universe — but in a
// form built for repeated and incremental solving:
//
//  * flat CSR storage — every candidate set's member list lives in one
//    contiguous int32 arena (`mem_`), addressed by per-set offset/length;
//  * an element -> containing-sets inverted index, also CSR (`inv_`), plus an
//    O(1)-append overflow chain for sets created after the last compaction;
//  * tombstones — retiring a group's sets marks them dead in place; iteration
//    helpers skip dead sets, and a compaction pass reclaims the arenas when
//    the dead fraction passes 50%;
//  * a dirty-group protocol — `update_groups(source, groups)` rebuilds only
//    the candidate sets of the named groups (APs) from the backing network
//    source, leaving everything else untouched.
//
// Solvers never scan the engine from scratch per pick: core/solve.hpp
// maintains exact marginal gains per set, decremented through the inverted
// index as elements get covered.
//
// A `Source` is any type modelling the network behind the system (see
// ScenarioSource in setcover/reduction.hpp and StateSource in
// ctrl/engine_source.hpp):
//
//   int    n_elements() const;
//   int    n_groups() const;              // == number of APs
//   int    n_sessions() const;
//   double session_rate(int s) const;
//   int    element_session(int e) const;
//   bool   element_active(int e) const;   // participates in candidate sets
//   double link_rate(int g, int e) const; // 0 = out of range
//   double basic_rate() const;            // single-rate (multi_rate=false) tx
//   template <class Fn> void for_each_element_of_group(int g, Fn) const;
//     // superset of the group's in-range elements; the engine filters
//
// A Source may additionally provide
//   template <class Fn> void for_each_link_of_group(int g, Fn) const;
//     // calls Fn(e, rate) with the positive link rate paired in — sources
//     // with sparse per-group (element, rate) rows (CSR scenarios) skip the
//     // per-element link_rate lookup; element order must match
//     // for_each_element_of_group
// and the engine uses it when present (detected via `requires`).
//
// Set ids are stable between updates but NOT across compaction; hold ids only
// while the engine is quiescent (one epoch / one solve).
#pragma once

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <span>
#include <utility>
#include <vector>

#include "wmcast/util/assert.hpp"
#include "wmcast/util/bitset.hpp"

namespace wmcast::core {

/// Lifetime counters for the rebuild-vs-repair story: how much of the system
/// incremental updates actually touched. Exposed through controller telemetry
/// and the churn benches.
/// Exact (mantissa, exponent) decomposition of a positive cost: cost =
/// mant * 2^(exp-53) with mant an integer in [2^52, 2^53) (smaller for
/// subnormals; still exact). The engine caches this per set so the solvers'
/// exact cross-product comparator (core/solve.hpp better_pick) never re-runs
/// frexp inside the heap hot loop.
inline void decompose_cost(double cost, int64_t& mant, int32_t& exp) {
  int e = 0;
  const double f = std::frexp(cost, &e);
  mant = static_cast<int64_t>(std::ldexp(f, 53));
  exp = e;
}

struct EngineStats {
  uint64_t full_builds = 0;          // build_full calls
  uint64_t incremental_updates = 0;  // update_groups calls
  uint64_t groups_rebuilt = 0;       // groups re-projected by update_groups
  uint64_t sets_rebuilt = 0;         // sets appended by update_groups
  uint64_t sets_retired = 0;         // sets tombstoned by update_groups
  uint64_t compactions = 0;          // arena reclamation passes
};

class CoverageEngine {
 public:
  CoverageEngine() = default;

  int n_elements() const { return n_elements_; }
  int n_groups() const { return n_groups_; }
  /// Total set slots, live and dead; gain/seen arrays size to this.
  int n_set_slots() const { return static_cast<int>(cost_.size()); }
  int n_live_sets() const { return live_sets_; }

  bool alive(int j) const { return alive_[static_cast<size_t>(j)] != 0; }
  double cost(int j) const { return cost_[static_cast<size_t>(j)]; }
  /// Cached decompose_cost of cost(j): cost == cost_mant * 2^(cost_exp - 53).
  int64_t cost_mant(int j) const { return cost_mant_[static_cast<size_t>(j)]; }
  int32_t cost_exp(int j) const { return cost_exp_[static_cast<size_t>(j)]; }
  int group(int j) const { return group_[static_cast<size_t>(j)]; }
  int ap(int j) const { return group(j); }  // group == AP for WLAN systems
  int session(int j) const { return session_[static_cast<size_t>(j)]; }
  double tx_rate(int j) const { return tx_rate_[static_cast<size_t>(j)]; }
  int degree(int j) const { return mem_len_[static_cast<size_t>(j)]; }

  /// Member elements of set j (ascending within one (group, session) build).
  std::span<const int32_t> members(int j) const {
    return {mem_.data() + mem_off_[static_cast<size_t>(j)],
            static_cast<size_t>(mem_len_[static_cast<size_t>(j)])};
  }

  /// Live set ids of group g (unspecified order after updates).
  const std::vector<int32_t>& group_sets(int g) const {
    return group_sets_[static_cast<size_t>(g)];
  }

  /// Calls fn(j) for every *live* set containing element e: the CSR slice of
  /// the last compaction (dead ids skipped) plus the overflow chain.
  template <typename Fn>
  void for_each_set_of(int e, Fn&& fn) const {
    const auto eu = static_cast<size_t>(e);
    if (eu + 1 < inv_off_.size()) {
      for (int32_t k = inv_off_[eu]; k < inv_off_[eu + 1]; ++k) {
        const int32_t j = inv_sets_[static_cast<size_t>(k)];
        if (alive_[static_cast<size_t>(j)]) fn(j);
      }
    }
    if (eu < inv_head_.size()) {
      for (int32_t node = inv_head_[eu]; node != -1;
           node = inv_next_[static_cast<size_t>(node)]) {
        const int32_t j = inv_node_set_[static_cast<size_t>(node)];
        if (alive_[static_cast<size_t>(j)]) fn(j);
      }
    }
  }

  /// Elements covered by at least one live set (maintained incrementally).
  const util::DynBitset& coverable() const { return coverable_; }

  /// Largest live-set cost (SCG's c_max); recomputed lazily after updates.
  double max_set_cost() const;
  /// max over coverable e of min cost of a live set containing e; lazy.
  double min_feasible_budget() const;

  const EngineStats& stats() const { return stats_; }

  // --- construction -------------------------------------------------------

  /// Resets to an empty system over the given universe.
  void reset(int n_elements, int n_groups);

  /// Appends one set to `group` and returns its id. Members must be in
  /// [0, n_elements) and duplicates-free; cost must be positive. Used both by
  /// the Source build path and by adapters translating a SetSystem.
  int add_set(int group, int ap_session, double tx_rate, double cost,
              std::span<const int32_t> members);

  /// Grows the element universe (new elements start uncoverable). Used when
  /// the controller's slot space extends on joins.
  void grow_universe(int n_elements);

  /// Full projection of a Source (same construction as the paper's reduction,
  /// see setcover/reduction.hpp): per (group, session), one candidate set per
  /// distinct occurring link rate, members accumulating as the rate drops.
  ///
  /// Bulk path: while building, add_set skips the per-member overflow-chain
  /// insertion and the whole inverted index is counting-sorted into its CSR
  /// form once at the end — the solver's for_each_set_of then walks
  /// contiguous slices instead of 20M-node linked chains at the million-user
  /// scale. Visit order through the index differs from the chain order, but
  /// every consumer folds commutatively (gain scatter/decrement, coverability
  /// flags), so results are bit-identical.
  template <typename Source>
  void build_full(const Source& src, bool multi_rate = true) {
    reset(src.n_elements(), src.n_groups());
    bulk_building_ = true;
    for (int g = 0; g < n_groups_; ++g) build_group(src, g, multi_rate);
    bulk_building_ = false;
    rebuild_inverted_csr();
    ++stats_.full_builds;
  }

  /// Rebuilds only the candidate sets of `groups` from `src` (which reflects
  /// the *new* network state). Everything else — arenas, inverted index,
  /// other groups' sets — is untouched; dead space is reclaimed by compaction
  /// once it crosses the threshold. Group ids listed twice are rebuilt once.
  template <typename Source>
  void update_groups(const Source& src, std::span<const int> groups,
                     bool multi_rate = true) {
    if (src.n_elements() > n_elements_) grow_universe(src.n_elements());
    util::require(src.n_groups() == n_groups_,
                  "CoverageEngine::update_groups: group universe changed");
    ++stats_.incremental_updates;
    ++stamp_;
    touched_scratch_.clear();
    for (const int g : groups) {
      util::require(g >= 0 && g < n_groups_,
                    "CoverageEngine::update_groups: group out of range");
      auto& sets = group_sets_[static_cast<size_t>(g)];
      for (const int32_t j : sets) retire_set(j);
      sets.clear();
      const int before = n_set_slots();
      build_group(src, g, multi_rate);
      stats_.sets_rebuilt += static_cast<uint64_t>(n_set_slots() - before);
      ++stats_.groups_rebuilt;
    }
    // Elements that lost a set may have lost coverability (add_set already
    // restored bits for re-added members); settle them against the index.
    refresh_coverable(touched_scratch_);
    maybe_compact();
  }

  /// Reclaims dead arena space and renumbers live sets densely. Invalidate
  /// any held set ids. Called automatically by update_groups past the dead
  /// threshold; public for tests.
  void compact();

 private:
  /// One pass over the group's link row buckets requesters by session (the
  /// old shape re-walked the whole row once per session — an O(degree ×
  /// n_sessions) tax that dominated full builds at scale); sessions are then
  /// emitted in ascending order. Within a session, entries arrive in row
  /// order exactly as the per-session scan produced them, so set ids, member
  /// layout, and tie-breaks are unchanged.
  template <typename Source>
  void build_group(const Source& src, int g, bool multi_rate) {
    const int n_sessions = src.n_sessions();
    auto& buckets = session_req_scratch_;
    if (buckets.size() < static_cast<size_t>(n_sessions)) {
      buckets.resize(static_cast<size_t>(n_sessions));
    }
    for (int s = 0; s < n_sessions; ++s) buckets[static_cast<size_t>(s)].clear();

    if constexpr (requires { src.for_each_link_of_group(g, [](int, double) {}); }) {
      src.for_each_link_of_group(g, [&](int e, double r) {
        if (r <= 0.0 || !src.element_active(e)) return;
        const int s = src.element_session(e);
        if (s >= 0 && s < n_sessions) buckets[static_cast<size_t>(s)].emplace_back(r, e);
      });
    } else {
      src.for_each_element_of_group(g, [&](int e) {
        if (!src.element_active(e)) return;
        const int s = src.element_session(e);
        if (s < 0 || s >= n_sessions) return;
        const double r = src.link_rate(g, e);
        if (r > 0.0) buckets[static_cast<size_t>(s)].emplace_back(r, e);
      });
    }

    for (int s = 0; s < n_sessions; ++s) {
      auto& req = buckets[static_cast<size_t>(s)];
      if (req.empty()) continue;
      const double stream = src.session_rate(s);
      if (!multi_rate) {
        members_scratch_.clear();
        for (const auto& [r, e] : req) members_scratch_.push_back(e);
        std::sort(members_scratch_.begin(), members_scratch_.end());
        const double basic = src.basic_rate();
        add_set(g, s, basic, stream / basic, members_scratch_);
        continue;
      }
      // Bucket by distinct rate level instead of sorting the whole row:
      // rates come from a small discrete PHY table, so one linear pass with
      // a short linear-probe over the levels seen so far replaces the
      // O(d log d) pair sort that dominated million-user builds. Levels are
      // then emitted in descending rate order with ascending element ids
      // inside each level — exactly the (rate desc, id asc) sorted order —
      // so set ids, member layout, and costs are unchanged. Rows with more
      // distinct rates than the cap fall back to the sort.
      constexpr size_t kMaxRateLevels = 64;
      auto& rates = level_rate_scratch_;
      auto& lv_members = level_members_scratch_;
      rates.clear();
      bool bucketed = true;
      for (const auto& [r, e] : req) {
        size_t li = 0;
        const size_t n = rates.size();
        while (li < n && rates[li] != r) ++li;
        if (li == n) {
          if (n == kMaxRateLevels) {
            bucketed = false;
            break;
          }
          rates.push_back(r);
          if (lv_members.size() <= li) lv_members.emplace_back();
          lv_members[li].clear();
        }
        lv_members[li].push_back(e);
      }
      if (bucketed) {
        auto& order = level_order_scratch_;
        order.resize(rates.size());
        for (size_t k = 0; k < order.size(); ++k) order[k] = static_cast<int>(k);
        // Rates within one row are distinct by construction, so descending
        // `>` is a total order — the emission order is deterministic.
        std::sort(order.begin(), order.end(), [&](int x, int y) {
          return rates[static_cast<size_t>(x)] > rates[static_cast<size_t>(y)];
        });
        members_scratch_.clear();
        for (const int li : order) {
          auto& m = lv_members[static_cast<size_t>(li)];
          // Row order is already ascending for CSR sources (the users_of_ap
          // contract); generic sources pay the per-level sort.
          if (!std::is_sorted(m.begin(), m.end())) std::sort(m.begin(), m.end());
          members_scratch_.insert(members_scratch_.end(), m.begin(), m.end());
          const double rate = rates[static_cast<size_t>(li)];
          add_set(g, s, rate, stream / rate, members_scratch_);
        }
        continue;
      }
      // Descending rate; ties on rate keep ascending element order so set
      // ids and member layout are deterministic.
      std::sort(req.begin(), req.end(), [](const auto& x, const auto& y) {
        return x.first != y.first ? x.first > y.first : x.second < y.second;
      });
      members_scratch_.clear();
      size_t i = 0;
      while (i < req.size()) {
        const double rate = req[i].first;
        while (i < req.size() && req[i].first == rate) {
          members_scratch_.push_back(req[i].second);
          ++i;
        }
        add_set(g, s, rate, stream / rate, members_scratch_);
      }
    }
  }

  void retire_set(int32_t j);
  void refresh_coverable(std::span<const int32_t> elements);
  void maybe_compact();
  /// Counting-sorts mem_ into the inverted CSR (inv_off_/inv_sets_) and
  /// drains the overflow chains. Requires every slot alive (fresh full build
  /// or post-compaction state).
  void rebuild_inverted_csr();

  int n_elements_ = 0;
  int n_groups_ = 0;
  int live_sets_ = 0;

  // Per-set SoA (indexed by set id, including dead slots).
  std::vector<int32_t> mem_off_;
  std::vector<int32_t> mem_len_;
  std::vector<double> cost_;
  std::vector<int64_t> cost_mant_;  // cached decompose_cost(cost_[j])
  std::vector<int32_t> cost_exp_;
  std::vector<double> tx_rate_;
  std::vector<int32_t> group_;
  std::vector<int32_t> session_;
  std::vector<char> alive_;

  std::vector<int32_t> mem_;  // the member arena
  int64_t dead_members_ = 0;  // arena entries owned by dead sets

  // Inverted index: CSR snapshot (of the last compaction / full build) plus
  // overflow chains for post-snapshot sets.
  std::vector<int32_t> inv_off_;
  std::vector<int32_t> inv_sets_;
  std::vector<int32_t> inv_head_;      // per element, -1 = empty chain
  std::vector<int32_t> inv_node_set_;  // overflow nodes
  std::vector<int32_t> inv_next_;

  std::vector<std::vector<int32_t>> group_sets_;

  util::DynBitset coverable_;
  mutable double max_cost_ = 0.0;
  mutable double min_feasible_budget_ = 0.0;
  mutable bool cost_caches_dirty_ = true;

  // Reusable build scratch (no steady-state allocations).
  std::vector<std::vector<std::pair<double, int>>> session_req_scratch_;
  std::vector<int32_t> members_scratch_;
  std::vector<double> level_rate_scratch_;
  std::vector<std::vector<int32_t>> level_members_scratch_;
  std::vector<int> level_order_scratch_;
  bool bulk_building_ = false;
  std::vector<int32_t> touched_scratch_;
  std::vector<int32_t> touched_stamp_;
  std::vector<int32_t> inv_cursor_scratch_;
  int32_t stamp_ = 0;

  EngineStats stats_;
};

}  // namespace wmcast::core
