// Multicast period scheduling for dual association (paper §3.1: "the APs
// are synchronized through a time-synchronization protocol and each user
// independently selects one AP for unicast and another one for multicast").
//
// For a split user (multicast AP != unicast anchor) to use a single radio,
// its multicast AP's multicast window must not overlap its unicast anchor's
// multicast window — otherwise the user must be listening in two places at
// once. Each AP needs a window of length equal to its multicast load; the
// frame is one unit of airtime. Finding offsets that avoid all conflicts is
// interval scheduling on a conflict graph (NP-hard in general); we provide
// a greedy slot scheduler and report the residual conflicts, which become
// airtime the affected users simply lose.
#pragma once

#include <vector>

#include "wmcast/assoc/dual.hpp"
#include "wmcast/wlan/association.hpp"

namespace wmcast::ext {

struct PeriodSchedule {
  /// window_start[a] in [0, 1): offset of AP a's multicast window within the
  /// (unit-length, network-synchronized) service period. Windows wrap.
  std::vector<double> window_start;
  /// Multicast window length per AP (its multicast load; 0 = no window).
  std::vector<double> window_length;
  /// Split users whose two windows overlap despite scheduling.
  int conflicting_users = 0;
  int split_users = 0;
  /// Total overlap time summed over conflicting users (airtime they lose).
  double total_overlap = 0.0;
};

/// Greedy scheduler: processes APs by descending window length; each AP
/// takes the earliest offset that avoids overlap with every already-placed
/// AP it shares a split user with (first-fit over the sorted busy intervals;
/// falls back to the least-overlapping offset when no gap fits).
PeriodSchedule schedule_multicast_periods(const wlan::Scenario& sc,
                                          const wlan::Association& multicast);

/// Overlap length of two wrapped windows [s1, s1+l1) and [s2, s2+l2) on the
/// unit circle (exposed for testing).
double wrapped_overlap(double s1, double l1, double s2, double l2);

}  // namespace wmcast::ext
