// Interference-aware distributed association (paper §8, "Explicit
// Interference Modeling": "the approximation algorithms need to be modified
// to explicitly account for interference from neighboring users and APs").
//
// Given a channel assignment, an AP's *effective* busy fraction is its own
// multicast load plus the load of same-channel APs within interference
// range. This engine runs the distributed round protocol with the decision
// rule scoring effective loads instead of raw loads: a user placing a
// stream on AP a now also accounts for the airtime that stream steals from
// a's co-channel neighbors. Sequential rounds still converge: a move only
// changes the loads of the user's old and new APs, and both (plus their
// conflict neighborhoods) are inside the evaluated set, so every accepted
// move strictly decreases the global effective-load potential.
#pragma once

#include "wmcast/assoc/distributed.hpp"
#include "wmcast/assoc/solution.hpp"
#include "wmcast/ext/interference.hpp"
#include "wmcast/util/rng.hpp"

namespace wmcast::ext {

struct InterferenceAwareParams {
  assoc::Objective objective = assoc::Objective::kTotalLoad;
  int max_rounds = 200;
  bool enforce_budget = true;
  bool multi_rate = true;
  std::vector<int> order;  // empty = shuffled
};

/// Runs the interference-aware sequential round engine. `conflicts` is the
/// same-channel conflict adjacency (see sim::same_channel_conflicts).
assoc::Solution interference_aware_associate(
    const wlan::Scenario& sc, const std::vector<std::vector<int>>& conflicts,
    util::Rng& rng, const InterferenceAwareParams& params = {});

}  // namespace wmcast::ext
