#include "wmcast/ext/power_control.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

#include "wmcast/util/assert.hpp"
#include "wmcast/util/fp.hpp"

namespace wmcast::ext {

namespace {

constexpr double kPi = 3.14159265358979323846;

double threshold_for_rate(const wlan::RateTable& table, double rate_mbps) {
  for (const auto& s : table.steps()) {
    if (s.rate_mbps == rate_mbps) return s.max_distance_m;
  }
  WMCAST_ASSERT(false, "threshold_for_rate: rate not in table");
  return 0.0;
}

}  // namespace

wlan::Scenario scenario_at_power(const wlan::Scenario& sc, const wlan::RateTable& base,
                                 double scale) {
  util::require(sc.has_geometry(), "scenario_at_power: needs a geometric scenario");
  std::vector<int> sessions(static_cast<size_t>(sc.n_users()));
  for (int u = 0; u < sc.n_users(); ++u) sessions[static_cast<size_t>(u)] = sc.user_session(u);
  std::vector<double> rates(static_cast<size_t>(sc.n_sessions()));
  for (int s = 0; s < sc.n_sessions(); ++s) rates[static_cast<size_t>(s)] = sc.session_rate(s);
  return wlan::Scenario::from_geometry(sc.ap_positions(), sc.user_positions(),
                                       std::move(sessions), std::move(rates),
                                       base.scaled_range(scale), sc.load_budget());
}

PowerShrinkReport shrink_powers(const wlan::Scenario& sc, const wlan::Association& assoc,
                                const wlan::RateTable& base,
                                std::span<const double> scales, bool keep_rate) {
  util::require(sc.has_geometry(), "shrink_powers: needs a geometric scenario");
  std::vector<double> sorted_scales(scales.begin(), scales.end());
  std::sort(sorted_scales.begin(), sorted_scales.end());
  util::require(std::find(sorted_scales.begin(), sorted_scales.end(), 1.0) !=
                    sorted_scales.end(),
                "shrink_powers: scales must include 1.0 (the base power)");

  // Member distances per (ap, session).
  std::vector<std::vector<std::vector<double>>> member_dist(
      static_cast<size_t>(sc.n_aps()),
      std::vector<std::vector<double>>(static_cast<size_t>(sc.n_sessions())));
  for (int u = 0; u < sc.n_users(); ++u) {
    const int a = assoc.ap_of(u);
    if (a == wlan::kNoAp) continue;
    const double d = wlan::distance(sc.ap_positions()[static_cast<size_t>(a)],
                                    sc.user_positions()[static_cast<size_t>(u)]);
    member_dist[static_cast<size_t>(a)][static_cast<size_t>(sc.user_session(u))].push_back(d);
  }

  // Rate tables at each candidate scale.
  std::vector<wlan::RateTable> tables;
  tables.reserve(sorted_scales.size());
  for (const double s : sorted_scales) tables.push_back(base.scaled_range(s));

  PowerShrinkReport rep;
  rep.scale.assign(static_cast<size_t>(sc.n_aps()),
                   std::vector<double>(static_cast<size_t>(sc.n_sessions()), 0.0));
  rep.loads_after = wlan::compute_loads(sc, assoc);  // structure + satisfied count

  // Per (ap, session): index into sorted_scales currently chosen, base load.
  struct Tx {
    int ap, session;
    size_t scale_idx;
    double load;       // at the chosen scale
    double base_load;  // at scale 1
  };
  std::vector<Tx> txs;

  auto tx_rate_at = [&](int a, int s, size_t idx) -> double {
    // Minimum member rate at tables[idx]; 0 if any member out of range.
    double mn = std::numeric_limits<double>::infinity();
    for (const double d : member_dist[static_cast<size_t>(a)][static_cast<size_t>(s)]) {
      const double r = tables[idx].rate_for_distance(d);
      if (r <= 0.0) return 0.0;
      mn = std::min(mn, r);
    }
    return mn;
  };

  const size_t base_idx = static_cast<size_t>(
      std::find(sorted_scales.begin(), sorted_scales.end(), 1.0) - sorted_scales.begin());

  for (int a = 0; a < sc.n_aps(); ++a) {
    for (int s = 0; s < sc.n_sessions(); ++s) {
      if (member_dist[static_cast<size_t>(a)][static_cast<size_t>(s)].empty()) continue;
      const double base_rate = tx_rate_at(a, s, base_idx);
      WMCAST_ASSERT(base_rate > 0.0, "shrink_powers: association invalid at base power");
      const double base_load = sc.session_rate(s) / base_rate;
      rep.footprint_before_m2 +=
          kPi * std::pow(threshold_for_rate(tables[base_idx], base_rate), 2);

      // keep_rate: smallest scale that preserves the transmission rate.
      // otherwise: the scale minimizing the coverage radius — lowering power
      // can drop the rate to a band whose (scaled) threshold reaches farther,
      // so "smallest scale" is not "smallest footprint".
      size_t pick = base_idx;
      double pick_radius =
          threshold_for_rate(tables[base_idx], base_rate);
      for (size_t idx = 0; idx < sorted_scales.size(); ++idx) {
        const double r = tx_rate_at(a, s, idx);
        if (r <= 0.0) continue;
        if (keep_rate) {
          if (r == base_rate) {
            pick = idx;
            break;  // scales ascend: first match is the smallest
          }
          continue;
        }
        const double radius = threshold_for_rate(tables[idx], r);
        if (radius < pick_radius - 1e-12) {
          pick = idx;
          pick_radius = radius;
        }
      }
      const double rate = tx_rate_at(a, s, pick);
      txs.push_back(Tx{a, s, pick, sc.session_rate(s) / rate, base_load});
    }
  }

  if (!keep_rate) {
    // Lower power can lower rates and raise loads; walk transmissions back up
    // toward base power until every AP meets the budget again.
    std::vector<double> ap_load(static_cast<size_t>(sc.n_aps()), 0.0);
    for (const auto& t : txs) ap_load[static_cast<size_t>(t.ap)] += t.load;
    for (bool progress = true; progress;) {
      progress = false;
      for (auto& t : txs) {
        if (util::fits_budget(ap_load[static_cast<size_t>(t.ap)], sc.load_budget())) continue;
        if (t.scale_idx == base_idx) continue;
        // Raise this transmission one power level.
        size_t next = t.scale_idx + 1;
        while (next < sorted_scales.size() && tx_rate_at(t.ap, t.session, next) <= 0.0) {
          ++next;
        }
        WMCAST_ASSERT(next < sorted_scales.size(), "shrink_powers: cannot restore budget");
        const double new_load =
            sc.session_rate(t.session) / tx_rate_at(t.ap, t.session, next);
        ap_load[static_cast<size_t>(t.ap)] += new_load - t.load;
        t.load = new_load;
        t.scale_idx = next;
        progress = true;
      }
    }
  }

  // Materialize the report.
  std::fill(rep.loads_after.ap_load.begin(), rep.loads_after.ap_load.end(), 0.0);
  for (auto& row : rep.loads_after.tx_rate) std::fill(row.begin(), row.end(), 0.0);
  rep.loads_after.total_load = 0.0;
  rep.loads_after.max_load = 0.0;
  rep.loads_after.budget_violations = 0;
  for (const auto& t : txs) {
    const double rate = tx_rate_at(t.ap, t.session, t.scale_idx);
    rep.scale[static_cast<size_t>(t.ap)][static_cast<size_t>(t.session)] =
        sorted_scales[t.scale_idx];
    rep.loads_after.tx_rate[static_cast<size_t>(t.ap)][static_cast<size_t>(t.session)] = rate;
    rep.loads_after.ap_load[static_cast<size_t>(t.ap)] += t.load;
    rep.loads_after.total_load += t.load;
    rep.footprint_after_m2 += kPi * std::pow(threshold_for_rate(tables[t.scale_idx], rate), 2);
  }
  for (int a = 0; a < sc.n_aps(); ++a) {
    const double load = rep.loads_after.ap_load[static_cast<size_t>(a)];
    rep.loads_after.max_load = std::max(rep.loads_after.max_load, load);
    if (util::exceeds_budget(load, sc.load_budget())) ++rep.loads_after.budget_violations;
  }
  return rep;
}

}  // namespace wmcast::ext
