#include "wmcast/ext/interference_aware.hpp"

#include <algorithm>
#include <chrono>
#include <functional>

#include "wmcast/util/assert.hpp"
#include "wmcast/util/fp.hpp"

namespace wmcast::ext {

namespace {

constexpr double kImproveEps = 1e-12;

bool vector_less(const std::vector<double>& a, const std::vector<double>& b) {
  for (size_t i = 0; i < a.size(); ++i) {
    if (a[i] < b[i] - kImproveEps) return true;
    if (a[i] > b[i] + kImproveEps) return false;
  }
  return false;
}

}  // namespace

assoc::Solution interference_aware_associate(
    const wlan::Scenario& sc, const std::vector<std::vector<int>>& conflicts,
    util::Rng& rng, const InterferenceAwareParams& params) {
  util::require(static_cast<int>(conflicts.size()) == sc.n_aps(),
                "interference_aware_associate: conflict list per AP required");
  const auto t0 = std::chrono::steady_clock::now();

  std::vector<int> order = params.order;
  if (order.empty()) {
    order = util::iota_permutation(sc.n_users());
    rng.shuffle(order);
  }
  util::require(static_cast<int>(order.size()) == sc.n_users(),
                "interference_aware_associate: order must list every user");

  // Scalar objective weight: an AP's raw load counts once for itself and
  // once per co-channel neighbor it interferes with (sum of effective loads
  // == sum of raw * (1 + conflict degree)).
  std::vector<double> weight(static_cast<size_t>(sc.n_aps()));
  for (int a = 0; a < sc.n_aps(); ++a) {
    weight[static_cast<size_t>(a)] = 1.0 + static_cast<double>(conflicts[static_cast<size_t>(a)].size());
  }

  // Evaluation set per user: its neighbors plus their conflict neighborhoods
  // (every AP whose effective load a move by this user can change).
  std::vector<std::vector<int>> eval_set(static_cast<size_t>(sc.n_users()));
  for (int u = 0; u < sc.n_users(); ++u) {
    auto& set = eval_set[static_cast<size_t>(u)];
    set = sc.aps_of_user(u);
    for (const int a : sc.aps_of_user(u)) {
      for (const int b : conflicts[static_cast<size_t>(a)]) set.push_back(b);
    }
    std::sort(set.begin(), set.end());
    set.erase(std::unique(set.begin(), set.end()), set.end());
  }

  std::vector<int> user_ap(static_cast<size_t>(sc.n_users()), wlan::kNoAp);
  std::vector<std::vector<int>> members(static_cast<size_t>(sc.n_aps()));
  std::vector<double> raw(static_cast<size_t>(sc.n_aps()), 0.0);

  auto recompute = [&](int a) {
    raw[static_cast<size_t>(a)] = wlan::ap_load_for_members(
        sc, a, members[static_cast<size_t>(a)], params.multi_rate);
  };
  auto effective = [&](int a) {
    double e = raw[static_cast<size_t>(a)];
    for (const int b : conflicts[static_cast<size_t>(a)]) e += raw[static_cast<size_t>(b)];
    return e;
  };

  auto move_user = [&](int u, int to) {
    const int from = user_ap[static_cast<size_t>(u)];
    if (from == to) return;
    if (from != wlan::kNoAp) {
      auto& m = members[static_cast<size_t>(from)];
      m.erase(std::find(m.begin(), m.end(), u));
      recompute(from);
    }
    if (to != wlan::kNoAp) {
      members[static_cast<size_t>(to)].push_back(u);
      recompute(to);
    }
    user_ap[static_cast<size_t>(u)] = to;
  };

  // Scores a tentative placement of u on `a` (or staying). Raw loads change
  // only on the user's neighbor APs, so evaluating eval_set[u] captures
  // every effective-load change.
  auto scalar_score = [&](int u) {
    double s = 0.0;
    for (const int b : sc.aps_of_user(u)) s += raw[static_cast<size_t>(b)] * weight[static_cast<size_t>(b)];
    return s;
  };
  auto vector_score = [&](int u) {
    std::vector<double> v;
    v.reserve(eval_set[static_cast<size_t>(u)].size());
    for (const int b : eval_set[static_cast<size_t>(u)]) v.push_back(effective(b));
    std::sort(v.begin(), v.end(), std::greater<>());
    return v;
  };

  int rounds = 0;
  bool converged = false;
  for (int round = 0; round < params.max_rounds && !converged; ++round) {
    ++rounds;
    bool changed = false;
    for (const int u : order) {
      const int cur = user_ap[static_cast<size_t>(u)];

      // Evaluate every candidate by trial move + rollback (cheap: two AP
      // load recomputations per trial).
      int best = cur;
      double best_scalar = 0.0;
      std::vector<double> best_vector;
      bool have_baseline = false;
      auto consider = [&](int a) {
        if (a != wlan::kNoAp && params.enforce_budget) {
          // Tentatively check the target's budget with u added.
          auto& m = members[static_cast<size_t>(a)];
          m.push_back(u);
          const double load = wlan::ap_load_for_members(sc, a, m, params.multi_rate);
          m.pop_back();
          if (a != cur && util::exceeds_budget(load, sc.load_budget())) return;
        }
        move_user(u, a);
        if (params.objective == assoc::Objective::kTotalLoad) {
          const double s = scalar_score(u);
          if (!have_baseline || s < best_scalar - kImproveEps) {
            best_scalar = s;
            best = a;
            have_baseline = true;
          }
        } else {
          auto v = vector_score(u);
          if (!have_baseline || vector_less(v, best_vector)) {
            best_vector = std::move(v);
            best = a;
            have_baseline = true;
          }
        }
        move_user(u, cur);  // rollback
      };

      if (cur != wlan::kNoAp) consider(cur);  // baseline: stay
      for (const int a : sc.aps_of_user(u)) {
        if (a != cur) consider(a);
      }
      // For unassociated users any feasible AP beats staying out (have_
      // baseline only becomes true once some candidate was admissible).
      if (have_baseline && best != cur) {
        move_user(u, best);
        changed = true;
      }
    }
    if (!changed) converged = true;
  }

  assoc::Solution sol = assoc::make_solution(
      params.objective == assoc::Objective::kLoadVector ? "BLA-D-intf" : "MLA-D-intf",
      sc, wlan::Association{std::move(user_ap)}, params.multi_rate);
  sol.rounds = rounds;
  sol.converged = converged;
  sol.solve_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0).count();
  return sol;
}

}  // namespace wmcast::ext
