#include "wmcast/ext/locks.hpp"

#include <algorithm>
#include <chrono>

#include "wmcast/util/assert.hpp"

namespace wmcast::ext {

assoc::Solution lock_coordinated_associate(const wlan::Scenario& sc, util::Rng& rng,
                                           const assoc::DistributedParams& params,
                                           LockStats* stats) {
  const auto t0 = std::chrono::steady_clock::now();

  std::vector<int> order = params.order;
  if (order.empty()) {
    order = util::iota_permutation(sc.n_users());
    rng.shuffle(order);
  }
  util::require(static_cast<int>(order.size()) == sc.n_users(),
                "lock_coordinated_associate: order must list every user");

  assoc::PolicyParams policy;
  policy.objective = params.objective;
  policy.enforce_budget = params.enforce_budget;
  policy.multi_rate = params.multi_rate;

  std::vector<int> user_ap(static_cast<size_t>(sc.n_users()), wlan::kNoAp);
  std::vector<std::vector<int>> members(static_cast<size_t>(sc.n_aps()));
  if (!params.initial.user_ap.empty()) {
    util::require(params.initial.n_users() == sc.n_users(),
                  "lock_coordinated_associate: initial association size mismatch");
    for (int u = 0; u < sc.n_users(); ++u) {
      const int a = params.initial.ap_of(u);
      if (a == wlan::kNoAp) continue;
      util::require(a >= 0 && a < sc.n_aps() && sc.in_range(a, u),
                    "lock_coordinated_associate: invalid initial association");
      user_ap[static_cast<size_t>(u)] = a;
      members[static_cast<size_t>(a)].push_back(u);
    }
  }

  LockStats local_stats;
  bool converged = false;

  std::vector<int> lock_holder(static_cast<size_t>(sc.n_aps()));
  for (int round = 0; round < params.max_rounds; ++round) {
    ++local_stats.rounds;

    // Phase 1: everyone computes a tentative decision on the same snapshot.
    std::vector<int> decision(static_cast<size_t>(sc.n_users()));
    std::vector<bool> wants_move(static_cast<size_t>(sc.n_users()), false);
    for (const int u : order) {
      decision[static_cast<size_t>(u)] = assoc::choose_best_ap(
          sc, u, members, user_ap[static_cast<size_t>(u)], policy);
      wants_move[static_cast<size_t>(u)] =
          decision[static_cast<size_t>(u)] != user_ap[static_cast<size_t>(u)];
    }

    // Phase 2: lock arbitration. A mover needs every neighboring AP; the
    // lowest user id wins contended locks, everyone else defers.
    std::fill(lock_holder.begin(), lock_holder.end(), -1);
    for (int u = 0; u < sc.n_users(); ++u) {
      if (!wants_move[static_cast<size_t>(u)]) continue;
      for (const int a : sc.aps_of_user(u)) {
        auto& holder = lock_holder[static_cast<size_t>(a)];
        if (holder == -1 || holder > u) holder = u;
      }
    }

    // Phase 3: winners (users holding all their locks) apply their moves.
    bool changed = false;
    for (int u = 0; u < sc.n_users(); ++u) {
      if (!wants_move[static_cast<size_t>(u)]) continue;
      const bool holds_all = std::all_of(
          sc.aps_of_user(u).begin(), sc.aps_of_user(u).end(),
          [&](int a) { return lock_holder[static_cast<size_t>(a)] == u; });
      if (!holds_all) {
        ++local_stats.deferrals;
        continue;
      }
      ++local_stats.lock_grants;
      const int from = user_ap[static_cast<size_t>(u)];
      const int to = decision[static_cast<size_t>(u)];
      if (from != wlan::kNoAp) {
        auto& m = members[static_cast<size_t>(from)];
        m.erase(std::find(m.begin(), m.end(), u));
      }
      if (to != wlan::kNoAp) members[static_cast<size_t>(to)].push_back(u);
      user_ap[static_cast<size_t>(u)] = to;
      changed = true;
    }

    if (!changed) {
      // No user moved. If nobody even wanted to move, this is a fixed point;
      // otherwise every mover deferred, which cannot happen (the lowest-id
      // mover always wins all its locks).
      converged = true;
      break;
    }
  }

  assoc::Solution sol = assoc::make_solution(
      params.objective == assoc::Objective::kLoadVector ? "BLA-D-lock" : "MNU/MLA-D-lock",
      sc, wlan::Association{std::move(user_ap)}, params.multi_rate);
  sol.rounds = local_stats.rounds;
  sol.converged = converged;
  sol.solve_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0).count();
  if (stats != nullptr) *stats = local_stats;
  return sol;
}

}  // namespace wmcast::ext
