// Lock-based coordination for simultaneous distributed decisions (paper §8,
// "Distributed Convergence"): before committing an association change, a
// user must hold locks on all of its neighboring APs. Users that fail to
// acquire every lock defer to the next round. Winners in one round have
// disjoint AP neighborhoods, so their (individually improving) moves cannot
// invalidate each other — the global potential still strictly decreases and
// the protocol converges even with synchronized decisions, where the plain
// simultaneous protocol oscillates (Fig. 4).
#pragma once

#include "wmcast/assoc/distributed.hpp"
#include "wmcast/assoc/solution.hpp"
#include "wmcast/util/rng.hpp"
#include "wmcast/wlan/scenario.hpp"

namespace wmcast::ext {

struct LockStats {
  int rounds = 0;
  int64_t deferrals = 0;    // user-rounds lost to lock conflicts
  int64_t lock_grants = 0;  // successful full acquisitions
};

/// Runs the simultaneous round engine with lock arbitration. Lock priority is
/// user id (lower wins), matching a deployment where ties break on MAC
/// address. Parameters mirror assoc::DistributedParams; `mode` is ignored
/// (the point is that simultaneous rounds are now safe).
assoc::Solution lock_coordinated_associate(const wlan::Scenario& sc, util::Rng& rng,
                                           const assoc::DistributedParams& params,
                                           LockStats* stats = nullptr);

}  // namespace wmcast::ext
