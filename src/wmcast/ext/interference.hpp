// Explicit interference modeling (paper §8, "Explicit Interference
// Modeling"). The paper's evaluation assumes neighboring APs are on
// non-interfering channels (802.11a offers 12); this module drops that
// assumption: it builds the AP conflict graph, assigns channels greedily,
// and reports the *effective* busy fraction each AP observes — its own
// multicast load plus the load of same-channel APs within interference
// range. The ablation bench contrasts 3 channels (802.11b/g) with 12
// (802.11a) and shows how BLA/MLA implicitly reduce interference.
#pragma once

#include <vector>

#include "wmcast/wlan/association.hpp"
#include "wmcast/wlan/scenario.hpp"

namespace wmcast::ext {

struct ChannelAssignment {
  std::vector<int> channel_of_ap;
  int conflict_edges = 0;  // same-channel AP pairs within interference range
};

/// AP conflict graph: pairs of APs closer than `interference_range_m`
/// (requires a geometric scenario). Returned as adjacency lists.
std::vector<std::vector<int>> build_conflict_graph(const wlan::Scenario& sc,
                                                   double interference_range_m);

/// Greedy graph coloring with `n_channels` colors, highest degree first;
/// each AP takes the channel with the fewest already-colored conflicting
/// neighbors (ties to the lowest channel).
ChannelAssignment assign_channels(const std::vector<std::vector<int>>& conflicts,
                                  int n_channels);

struct InterferenceReport {
  /// effective_load[a] = own multicast load + sum of loads of same-channel
  /// APs within interference range of a.
  std::vector<double> effective_load;
  double max_effective_load = 0.0;
  double mean_effective_load = 0.0;
};

InterferenceReport interference_report(const wlan::Scenario& sc,
                                       const wlan::LoadReport& loads,
                                       const ChannelAssignment& channels,
                                       const std::vector<std::vector<int>>& conflicts);

}  // namespace wmcast::ext
