#include "wmcast/ext/interference.hpp"

#include <algorithm>
#include <numeric>

#include "wmcast/util/assert.hpp"

namespace wmcast::ext {

std::vector<std::vector<int>> build_conflict_graph(const wlan::Scenario& sc,
                                                   double interference_range_m) {
  util::require(sc.has_geometry(), "build_conflict_graph: needs a geometric scenario");
  util::require(interference_range_m > 0.0, "build_conflict_graph: range must be positive");
  const auto& pos = sc.ap_positions();
  std::vector<std::vector<int>> adj(static_cast<size_t>(sc.n_aps()));
  for (int a = 0; a < sc.n_aps(); ++a) {
    for (int b = a + 1; b < sc.n_aps(); ++b) {
      if (wlan::distance(pos[static_cast<size_t>(a)], pos[static_cast<size_t>(b)]) <=
          interference_range_m) {
        adj[static_cast<size_t>(a)].push_back(b);
        adj[static_cast<size_t>(b)].push_back(a);
      }
    }
  }
  return adj;
}

ChannelAssignment assign_channels(const std::vector<std::vector<int>>& conflicts,
                                  int n_channels) {
  util::require(n_channels > 0, "assign_channels: need at least one channel");
  const int n = static_cast<int>(conflicts.size());

  std::vector<int> order(static_cast<size_t>(n));
  std::iota(order.begin(), order.end(), 0);
  std::sort(order.begin(), order.end(), [&](int a, int b) {
    const size_t da = conflicts[static_cast<size_t>(a)].size();
    const size_t db = conflicts[static_cast<size_t>(b)].size();
    return da != db ? da > db : a < b;
  });

  ChannelAssignment res;
  res.channel_of_ap.assign(static_cast<size_t>(n), -1);
  std::vector<int> neighbor_count(static_cast<size_t>(n_channels));
  for (const int a : order) {
    std::fill(neighbor_count.begin(), neighbor_count.end(), 0);
    for (const int b : conflicts[static_cast<size_t>(a)]) {
      const int c = res.channel_of_ap[static_cast<size_t>(b)];
      if (c >= 0) ++neighbor_count[static_cast<size_t>(c)];
    }
    const auto best = std::min_element(neighbor_count.begin(), neighbor_count.end());
    res.channel_of_ap[static_cast<size_t>(a)] =
        static_cast<int>(best - neighbor_count.begin());
  }

  for (int a = 0; a < n; ++a) {
    for (const int b : conflicts[static_cast<size_t>(a)]) {
      if (b > a && res.channel_of_ap[static_cast<size_t>(a)] ==
                       res.channel_of_ap[static_cast<size_t>(b)]) {
        ++res.conflict_edges;
      }
    }
  }
  return res;
}

InterferenceReport interference_report(const wlan::Scenario& sc,
                                       const wlan::LoadReport& loads,
                                       const ChannelAssignment& channels,
                                       const std::vector<std::vector<int>>& conflicts) {
  util::require(static_cast<int>(channels.channel_of_ap.size()) == sc.n_aps(),
                "interference_report: channel assignment size mismatch");
  util::require(static_cast<int>(conflicts.size()) == sc.n_aps(),
                "interference_report: conflict graph size mismatch");

  InterferenceReport rep;
  rep.effective_load.assign(static_cast<size_t>(sc.n_aps()), 0.0);
  for (int a = 0; a < sc.n_aps(); ++a) {
    double eff = loads.ap_load[static_cast<size_t>(a)];
    for (const int b : conflicts[static_cast<size_t>(a)]) {
      if (channels.channel_of_ap[static_cast<size_t>(a)] ==
          channels.channel_of_ap[static_cast<size_t>(b)]) {
        eff += loads.ap_load[static_cast<size_t>(b)];
      }
    }
    rep.effective_load[static_cast<size_t>(a)] = eff;
    rep.max_effective_load = std::max(rep.max_effective_load, eff);
    rep.mean_effective_load += eff;
  }
  if (sc.n_aps() > 0) rep.mean_effective_load /= sc.n_aps();
  return rep;
}

}  // namespace wmcast::ext
