// Adaptive power control (paper §8, "Adaptive Power Control"): APs choose
// from a finite set of discrete power levels. A power level scales every
// distance threshold of the rate table by a factor (free-space range grows
// with transmit power), giving two levers the base algorithms lack:
//
//  1. Coverage: scenario_at_power(sc, scale > 1) re-derives link rates at a
//     higher power, letting otherwise-unreachable users be served (MNU gains).
//  2. Footprint: shrink_powers() post-processes an association, lowering each
//     transmission to the smallest power that keeps its members served,
//     shrinking the interference footprint at zero (keep_rate=true) or
//     bounded (keep_rate=false) load cost.
#pragma once

#include <span>
#include <vector>

#include "wmcast/wlan/association.hpp"
#include "wmcast/wlan/scenario.hpp"

namespace wmcast::ext {

/// Re-derives a geometric scenario's link rates with every distance
/// threshold of `base` scaled by `scale` (same positions, sessions, budget).
wlan::Scenario scenario_at_power(const wlan::Scenario& sc, const wlan::RateTable& base,
                                 double scale);

struct PowerShrinkReport {
  /// scale[a][s]: the power scale chosen for AP a's transmission of session
  /// s; 0 when a does not transmit s.
  std::vector<std::vector<double>> scale;
  /// Interference footprint proxy: sum over transmissions of pi * r^2 where
  /// r is the distance reached by the transmission's rate at its power (m^2).
  double footprint_before_m2 = 0.0;
  double footprint_after_m2 = 0.0;
  /// Loads after power shrinking (identical to before when keep_rate).
  wlan::LoadReport loads_after;
};

/// For each (AP, session) transmission of `assoc`, picks the smallest power
/// scale from `scales` (which must contain 1.0) such that
///  * every assigned member still decodes (is in range at that power), and
///  * keep_rate=true:  the transmission rate is unchanged (load unchanged);
///    keep_rate=false: the rate may drop, as long as the AP stays within the
///    scenario's load budget.
/// Requires a geometric scenario built with `base` at scale 1.
PowerShrinkReport shrink_powers(const wlan::Scenario& sc, const wlan::Association& assoc,
                                const wlan::RateTable& base,
                                std::span<const double> scales, bool keep_rate = true);

}  // namespace wmcast::ext
