#include "wmcast/ext/period_schedule.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "wmcast/util/assert.hpp"

namespace wmcast::ext {

namespace {

// Overlap of [a, a+la) and [b, b+lb) on the real line.
double linear_overlap(double a, double la, double b, double lb) {
  return std::max(0.0, std::min(a + la, b + lb) - std::max(a, b));
}

}  // namespace

namespace {

// Splits a wrapped window [s, s+l) on the unit circle into its linear
// segments within [0, 1).
std::vector<std::pair<double, double>> unit_segments(double s, double l) {
  s = s - std::floor(s);
  if (s + l <= 1.0) return {{s, l}};
  return {{s, 1.0 - s}, {0.0, s + l - 1.0}};
}

}  // namespace

double wrapped_overlap(double s1, double l1, double s2, double l2) {
  util::require(l1 >= 0.0 && l1 <= 1.0 && l2 >= 0.0 && l2 <= 1.0,
                "wrapped_overlap: lengths must be in [0,1]");
  double total = 0.0;
  for (const auto& [a, la] : unit_segments(s1, l1)) {
    for (const auto& [b, lb] : unit_segments(s2, l2)) {
      total += linear_overlap(a, la, b, lb);
    }
  }
  return total;
}

PeriodSchedule schedule_multicast_periods(const wlan::Scenario& sc,
                                          const wlan::Association& multicast) {
  util::require(multicast.n_users() == sc.n_users(),
                "schedule_multicast_periods: association size mismatch");

  const auto loads = wlan::compute_loads(sc, multicast);

  PeriodSchedule sched;
  sched.window_start.assign(static_cast<size_t>(sc.n_aps()), 0.0);
  sched.window_length = loads.ap_load;

  // Conflict pairs: (multicast AP, unicast anchor) of every split user.
  struct SplitUser {
    int user;
    int mc_ap;
    int anchor;
  };
  std::vector<SplitUser> splits;
  std::vector<std::vector<int>> conflicts_of(static_cast<size_t>(sc.n_aps()));
  for (int u = 0; u < sc.n_users(); ++u) {
    const int mc = multicast.ap_of(u);
    const int anchor = sc.strongest_ap(u);
    if (mc == wlan::kNoAp || anchor == wlan::kNoAp || mc == anchor) continue;
    splits.push_back({u, mc, anchor});
    conflicts_of[static_cast<size_t>(mc)].push_back(anchor);
    conflicts_of[static_cast<size_t>(anchor)].push_back(mc);
  }
  sched.split_users = static_cast<int>(splits.size());

  // Greedy placement: longest window first; earliest non-overlapping offset
  // against already-placed conflicting APs.
  std::vector<int> order(static_cast<size_t>(sc.n_aps()));
  std::iota(order.begin(), order.end(), 0);
  std::sort(order.begin(), order.end(), [&](int a, int b) {
    const double la = sched.window_length[static_cast<size_t>(a)];
    const double lb = sched.window_length[static_cast<size_t>(b)];
    return la != lb ? la > lb : a < b;
  });

  std::vector<bool> placed(static_cast<size_t>(sc.n_aps()), false);
  for (const int a : order) {
    const double len = sched.window_length[static_cast<size_t>(a)];
    if (len <= 0.0) {
      placed[static_cast<size_t>(a)] = true;
      continue;
    }
    // Candidate offsets: 0 and the end of every placed conflicting window.
    std::vector<double> candidates = {0.0};
    for (const int b : conflicts_of[static_cast<size_t>(a)]) {
      if (!placed[static_cast<size_t>(b)]) continue;
      const double end = sched.window_start[static_cast<size_t>(b)] +
                         sched.window_length[static_cast<size_t>(b)];
      candidates.push_back(end - std::floor(end));
    }
    std::sort(candidates.begin(), candidates.end());

    double best_offset = 0.0;
    double best_overlap = std::numeric_limits<double>::infinity();
    for (const double s : candidates) {
      double overlap = 0.0;
      for (const int b : conflicts_of[static_cast<size_t>(a)]) {
        if (!placed[static_cast<size_t>(b)]) continue;
        overlap += wrapped_overlap(s, len, sched.window_start[static_cast<size_t>(b)],
                                   sched.window_length[static_cast<size_t>(b)]);
      }
      if (overlap < best_overlap - 1e-12) {
        best_overlap = overlap;
        best_offset = s;
        if (overlap <= 0.0) break;  // candidates are sorted: earliest gap wins
      }
    }
    sched.window_start[static_cast<size_t>(a)] = best_offset;
    placed[static_cast<size_t>(a)] = true;
  }

  // Residual conflicts per split user.
  for (const auto& s : splits) {
    const double ov = wrapped_overlap(
        sched.window_start[static_cast<size_t>(s.mc_ap)],
        sched.window_length[static_cast<size_t>(s.mc_ap)],
        sched.window_start[static_cast<size_t>(s.anchor)],
        sched.window_length[static_cast<size_t>(s.anchor)]);
    if (ov > 1e-12) {
      ++sched.conflicting_users;
      sched.total_overlap += ov;
    }
  }
  return sched;
}

}  // namespace wmcast::ext
