// The online association controller — the long-lived serving loop around the
// paper's batch solvers. Events (joins, leaves, moves, zaps, rate changes)
// are ingested into a queue; each drain() call applies one batch as an
// *epoch*:
//
//   1. coalesce   — per-user net effect of the batch (join+leave = no-op);
//   2. admission  — joins are gated by per-AP load budgets (MNU's budget
//                   semantics) or a caller-supplied hook;
//   3. dirty region — users whose candidate-AP set or rate moved, plus
//                   members of multicast groups whose bottleneck rate moved
//                   (see compute_dirty_slots);
//   4. incremental repair — carry everyone else, greedily re-place the dirty
//                   region, polish with a dirty-restricted local search;
//   5. bounded signaling — epoch snapshots allow rejecting any outcome whose
//                   voluntary re-associations exceed max_reassoc_per_epoch,
//                   rolling back to the minimal forced repair (quantifying
//                   §1's churn argument against naive centralized control);
//   6. degradation fallback — when repaired load drifts past the configured
//                   threshold over a periodically refreshed full-solve
//                   baseline, fall back to a full centralized re-solve
//                   (MNU-C/BLA-C/MLA-C via assoc/registry), itself subject to
//                   the signaling cap.
//
// Telemetry (ctrl/telemetry.hpp) records every step; dump via
// telemetry().to_json().
#pragma once

#include <functional>
#include <string>
#include <vector>

#include "wmcast/assoc/kconn.hpp"
#include "wmcast/assoc/local_search.hpp"
#include "wmcast/assoc/solution.hpp"
#include "wmcast/core/engine.hpp"
#include "wmcast/core/solve.hpp"
#include "wmcast/core/workspace.hpp"
#include "wmcast/ctrl/events.hpp"
#include "wmcast/ctrl/repair_shard.hpp"
#include "wmcast/ctrl/state.hpp"
#include "wmcast/ctrl/telemetry.hpp"
#include "wmcast/wlan/load_model.hpp"
#include "wmcast/core/parallel.hpp"
#include "wmcast/util/rng.hpp"
#include "wmcast/util/thread_pool.hpp"
#include "wmcast/wlan/association.hpp"
#include "wmcast/wlan/rate_table.hpp"

namespace wmcast::ctrl {

struct JoinRequest {
  int slot = -1;
  wlan::Point pos{};
  int session = -1;
};

/// Admission decision for one join: `ap_load` is the per-AP load of the last
/// committed epoch, `state` the pre-drain network state. Return false to
/// refuse service (the user stays present but unsubscribed until it
/// re-subscribes).
using AdmissionHook = std::function<bool(const JoinRequest& request,
                                         const std::vector<double>& ap_load,
                                         const NetworkState& state)>;

/// Called on each drained batch (with the epoch index it will run as) before
/// any event is validated or applied; free to mutate the batch — drop,
/// duplicate, reorder, corrupt. The chaos harness (chaos/fault.hpp) injects
/// faults through this seam; leave unset in production.
using BatchHook = std::function<void(int epoch, std::vector<Event>& batch)>;

struct ControllerConfig {
  /// Registry name of the full re-solve fallback (mla-c, bla-c, mnu-c, ...).
  std::string full_solver = "mla-c";
  /// Objective steering the greedy repair and the local-search polish.
  assoc::SearchObjective objective = assoc::SearchObjective::kTotalLoad;
  bool multi_rate = true;
  bool enforce_budget = true;
  /// Repaired total load may exceed the full-solve baseline by this relative
  /// factor before a full re-solve is triggered (0.10 = 10%).
  double degradation_threshold = 0.10;
  /// Bounded-signaling mode: reject any epoch outcome with more than this
  /// many *voluntary* re-associations (changes of users whose current AP is
  /// still valid) and roll back to the minimal forced repair. < 0 = off.
  int max_reassoc_per_epoch = -1;
  /// Refresh the full-solve baseline every N epochs (0 = only when the
  /// degradation fallback runs one anyway).
  int full_refresh_epochs = 10;
  /// Gate joins on per-AP load budgets (default hook) or `admission_hook`.
  bool admission_control = true;
  AdmissionHook admission_hook;  // overrides the built-in budget check
  /// Mutates each drained batch before it is applied (fault injection).
  BatchHook batch_hook;
  /// Max events per drain (<= 0 drains everything pending).
  int max_batch = 0;
  /// Local-search polish budget: moves allowed per dirty user.
  int polish_moves_per_dirty = 50;
  /// Minimum load improvement a polish move must buy to justify the handoff
  /// it costs (local_search's min_gain). 0 = accept any improvement.
  double polish_min_gain = 0.02;
  /// Rate table for link-rate updates as users move (must match the one the
  /// seed scenario was generated with).
  wlan::RateTable rate_table = wlan::RateTable::ieee80211a();
  uint64_t seed = 1;
  /// Worker threads for the epoch full-solve's sharded per-session path
  /// (core/parallel.hpp) and the sharded incremental repair below. 1 = serial
  /// (the reference semantics); <= 0 resolves WMCAST_THREADS, else 1. The
  /// committed association is identical at any thread count (DESIGN.md §9,
  /// §14).
  int threads = 1;
  /// Shard the incremental repair into AP-disjoint component tasks across the
  /// pool (ctrl/repair_shard.hpp). kTotalLoad only — other objectives keep
  /// the sequential path. The repaired association is bitwise identical at
  /// any thread count.
  bool shard_repair = true;
  /// Maximum serving APs per user (DESIGN.md §15-16). 1 = the paper's
  /// single-AP model: nothing changes, bit for bit. k >= 2 maintains a
  /// k-connectivity overlay (multi_assoc()/multi_loads()) on top of the
  /// committed primary association — a dirty user's whole served-set is the
  /// repair unit, never a lone secondary link. The committed primary
  /// association and loads are unchanged at any k.
  int k = 1;
  /// Maintain the k >= 2 overlay incrementally (DESIGN.md §16): the stream
  /// plan, served-set store and settled tx table persist across epochs and
  /// only the dirty region — users whose served-set intersects a dirty AP or
  /// who moved/churned — is re-derived, in parallel over AP-connected
  /// components of the pool. Bitwise identical to the cold re-derivation at
  /// any thread count (the chaos kconn-incremental oracle byte-checks this).
  /// false = re-derive the whole overlay every non-quiescent epoch (the cold
  /// reference path, kept for benches and differential tests).
  bool kconn_incremental = true;
  /// Defer coverage-engine group rebuilds until a full solve actually needs
  /// the engine: each drain runs only the cheap dirty-marking pass, and the
  /// accumulated marks flush right before the next full solve. Epochs that
  /// never escalate skip re-projection entirely. The committed association is
  /// unchanged; only the timing of the engine_* maintenance counters moves
  /// (they land on the flushing epoch).
  bool lazy_engine_refresh = true;
};

/// What one drain()/epoch did, for logs and benches. Cumulative counterparts
/// live in Telemetry.
struct EpochReport {
  int epoch = 0;
  int events = 0;             // drained this epoch
  int events_applied = 0;
  int events_invalid = 0;
  int events_coalesced = 0;   // net no-ops folded away
  int dirty_users = 0;
  bool used_full_solve = false;
  bool rolled_back = false;   // signaling cap forced the minimal repair
  int reassociations = 0;     // slot AP changes committed (incl. joins/drops)
  int handoffs = 0;           // AP -> different-AP moves (802.11 Reassociation)
  int forced_reassociations = 0;
  int voluntary_reassociations = 0;
  int rejected_joins = 0;
  int users_present = 0;
  int users_subscribed = 0;
  int users_served = 0;
  double total_load = 0.0;
  double max_load = 0.0;
  double baseline_load = 0.0;
  double drain_seconds = 0.0;
  // Sharded-repair accounting for the repair that produced the committed
  // association (zeros on the sequential path).
  int repair_shards = 0;
  double repair_imbalance = 0.0;
  // Coverage-engine maintenance this epoch (rebuild-vs-repair accounting):
  // how many APs' candidate sets were re-projected, and the set churn that
  // caused. A quiescent epoch reports all zeros; under lazy_engine_refresh
  // deferred work lands on the epoch that flushed it.
  int engine_groups_rebuilt = 0;
  int engine_sets_rebuilt = 0;
  int engine_sets_retired = 0;
  bool engine_compacted = false;
  // k-connectivity overlay after this epoch (zeros when cfg.k == 1).
  int multi_served_users = 0;
  double mean_effective_rate = 0.0;
  // Overlay maintenance this epoch: users re-derived vs carried untouched by
  // the dirty-region repair, and whether a cold full re-derivation ran. A
  // kconn-quiescent epoch (nothing dirty) reports all zeros and keeps the
  // cached overlay.
  int kconn_repaired_users = 0;
  int kconn_carried_users = 0;
  bool kconn_rebuild = false;
};

class AssociationController {
 public:
  /// Seeds the controller from a geometric scenario (all users present and
  /// subscribed) and computes the initial association + baseline with the
  /// configured full solver.
  explicit AssociationController(const wlan::Scenario& initial,
                                 ControllerConfig cfg = {});

  /// Enqueues events (thread-safe; drained on the next drain()).
  void submit(const Event& e) { queue_.push(e); }
  void submit(const std::vector<Event>& batch) { queue_.push_all(batch); }
  size_t pending_events() const { return queue_.size(); }

  /// Drains one batch and runs the incremental epoch. Safe to call with an
  /// empty queue (a quiescent epoch: nothing dirty, nothing changes).
  EpochReport drain();

  // State of the last committed epoch.
  const NetworkState& state() const { return state_; }
  const std::vector<int>& slot_ap() const { return slot_ap_; }
  const wlan::Scenario& scenario() const { return compact_sc_; }
  const std::vector<int>& row_slot() const { return row_slot_; }
  const wlan::LoadReport& loads() const { return loads_; }
  double baseline_load() const { return baseline_load_; }
  int epochs() const { return epoch_index_; }

  /// k-connectivity overlay of the last committed epoch (ControllerConfig::k
  /// >= 2; empty served-sets at k == 1). Row-indexed like scenario().
  const wlan::MultiAssociation& multi_assoc() const { return multi_assoc_; }
  const wlan::MultiLoadReport& multi_loads() const { return multi_loads_; }
  int k() const { return cfg_.k; }
  /// Cumulative wall seconds spent in refresh_multi (overlay repair/rebuild),
  /// including the constructor's cold build. Diagnostics for benches that
  /// isolate the overlay step from base repair; deliberately NOT part of
  /// telemetry so modeled-serve telemetry stays a pure function of the
  /// workload (the CI byte-diff legs depend on that).
  double kconn_seconds() const { return kconn_seconds_; }

  Telemetry& telemetry() { return tele_; }
  const Telemetry& telemetry() const { return tele_; }

  /// The slot-space coverage engine. Exposed for benches and tests; treat as
  /// read-only. Under lazy_engine_refresh it reflects the state as of the
  /// last full solve (dirty marks accumulate until then); with the flag off
  /// it is kept current with state() every epoch.
  const core::CoverageEngine& engine() const { return engine_; }

 private:
  struct ChangeCount {
    int total = 0;      // any slot AP change, including joins and drops
    int handoffs = 0;   // AP -> different-AP moves (802.11 Reassociation frames)
    int forced = 0;     // old AP invalidated (left, unsubscribed, moved out of range)
    int voluntary = 0;  // old AP still valid, optimizer moved or dropped the user
  };

  bool admit(const JoinRequest& req) const;
  assoc::Solution solve_full(const wlan::Scenario& sc, const std::vector<int>& row_slot);
  wlan::Association repair(const wlan::Scenario& sc, const wlan::Association& carried,
                           const std::vector<int>& movable_rows, bool polish);
  ChangeCount count_changes(const std::vector<int>& old_slot_ap,
                            const std::vector<int>& new_slot_ap,
                            const NetworkState& next) const;
  /// Marks every AP whose candidate sets could differ between state_ and
  /// `next` (old sets via the inverted index — still valid across deferred
  /// epochs, since the engine reflects the last flush — new in-range APs by
  /// position). Marks accumulate in dirty_groups_ until flush_engine runs.
  void mark_engine_dirty(const NetworkState& next);
  /// Rebuilds the marked groups against `st` and clears the marks. No-op when
  /// nothing is pending.
  void flush_engine(const NetworkState& st);
  /// Folds engine stat deltas since the last sync into telemetry (and the
  /// epoch report, when given).
  void sync_engine_stats(EpochReport* rep);
  /// Re-derives the k-connectivity overlay from the committed association
  /// (no-op at k == 1; kconn-quiescent epochs reuse the cached overlay).
  /// Called with null from the constructor, with the epoch report from
  /// drain(). Cold path (first derivation, session-rate change, or
  /// cfg_.kconn_incremental off): serial full re-derivation. Incremental
  /// path: re-plan dirty APs, re-derive only dirty rows (in parallel over
  /// AP-connected components), carry every other slot's served-set from
  /// kconn_served_, re-settle only touched APs. Both paths produce bitwise
  /// identical overlays and load reports.
  void refresh_multi(EpochReport* rep);
  /// Translates this epoch's applied slot deltas into kconn dirty marks
  /// (dirty APs whose stream plan may change + dirty slots whose served-set
  /// must be re-derived). Runs during drain() while the PRE-commit state_
  /// / compact_sc_ / row_slot_ and the post-epoch `next` / `new_slot_ap`
  /// coexist, because old heard-sets come from the old projection. A
  /// session-rate change sets kconn_rate_changed_ (cold rebuild: rates feed
  /// every stream's cost and advertised floor).
  void kconn_mark_dirty(const NetworkState& next,
                        const std::vector<int>& new_slot_ap);

  ControllerConfig cfg_;
  NetworkState state_;
  std::vector<int> slot_ap_;
  wlan::Scenario compact_sc_;
  std::vector<int> row_slot_;
  wlan::LoadReport loads_;
  double baseline_load_ = 0.0;
  int epochs_since_refresh_ = 0;
  int epoch_index_ = 0;
  EventQueue queue_;
  Telemetry tele_;
  util::Rng rng_;

  // Slot-space engine + reusable solve/repair scratch (steady-state epochs
  // allocate nothing beyond what the scenario projection needs).
  core::CoverageEngine engine_;
  core::EngineStats engine_stats_synced_;
  core::SolveWorkspace solve_ws_;
  util::ThreadPool pool_;            // sized from cfg_.threads (1 = inline)
  core::SessionShards shards_;       // rebuilt before each sharded full solve
  core::ShardWorkspaces shard_ws_;   // one solve workspace per pool lane
  core::AssocWorkspace repair_ws_;
  wlan::LoadModel repair_model_;               // sequential-path load probes
  std::vector<RepairLaneWorkspace> repair_lanes_;  // sharded-path lane scratch
  RepairShardStats last_repair_stats_;
  std::vector<int> dirty_groups_;
  std::vector<char> group_mark_;
  bool engine_flush_pending_ = false;
  std::vector<int> slot_row_;

  // k-connectivity overlay state (cfg_.k >= 2 only). The persistent engine
  // (DESIGN.md §16) keys its cross-epoch stores by what is stable across
  // epochs: the stream plan and settled tx by AP, the served-sets by slot
  // (rows are remapped every epoch; multi_assoc_'s row-space view is rebuilt
  // O(n·k) from kconn_served_ after each repair).
  wlan::MultiAssociation multi_assoc_;
  wlan::MultiLoadReport multi_loads_;
  bool multi_valid_ = false;
  assoc::KconnPlan kconn_plan_;                 // [ap][session] advert/startable
  std::vector<std::vector<double>> kconn_tx_;   // settled tx, [ap][session]
  std::vector<std::vector<int>> kconn_served_;  // served APs by SLOT (sorted)
  std::vector<int> kconn_dirty_aps_;            // this epoch's dirty APs
  std::vector<char> kconn_ap_mark_;
  std::vector<int> kconn_dirty_slots_;          // slots to re-derive
  std::vector<char> kconn_slot_mark_;
  bool kconn_rate_changed_ = false;             // forces a cold rebuild
  std::vector<int> kconn_settle_hint_;          // old/new primaries of dirty slots
  std::vector<int> kconn_rescan_aps_;           // pmin rows needing a full rescan
  std::vector<char> kconn_rescan_mark_;
  std::vector<assoc::KconnScratch> kconn_lanes_;  // per-pool-lane derive scratch
  double kconn_seconds_ = 0.0;                  // cumulative refresh_multi wall time
};

}  // namespace wmcast::ctrl
