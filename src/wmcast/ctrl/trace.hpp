// Event traces: the controller's replay input. One trace = an ordered list
// of epochs, each a batch of events drained together. Generation follows the
// paper's §3.1 quasi-static churn model (mobility + channel zapping, as in
// wlan::churn_epoch) extended with arrivals/departures, local random-walk
// mobility, and stream-rate changes; both bench/dynamics_churn and
// bench/ctrl_replay drive their experiments from this single generator.
//
// Text format (line oriented, like wlan/serialization):
//   wmcast-trace v1
//   epochs <n>
//   epoch <index> <n_events>
//   join <user> <x> <y> <session>
//   leave <user>
//   move <user> <x> <y>
//   rate_change <session> <mbps>
//   subscribe <user> <session>
//   unsubscribe <user>
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

#include "wmcast/ctrl/events.hpp"
#include "wmcast/ctrl/state.hpp"
#include "wmcast/util/rng.hpp"

namespace wmcast::ctrl {

struct TraceParams {
  int epochs = 20;
  /// Fraction of present users that relocate per epoch.
  double move_fraction = 0.1;
  /// 0 = teleport to a fresh uniform point (the paper's churn model);
  /// > 0 = Gaussian random-walk step with this sigma in meters (pedestrian
  /// mobility — users mostly stay inside their current AP neighborhood).
  double walk_sigma_m = 0.0;
  /// Fraction of present users that zap to a different session per epoch.
  double zap_fraction = 0.05;
  /// Expected departures per epoch, as a fraction of present users.
  double leave_fraction = 0.0;
  /// Expected arrivals per epoch, as a fraction of the initial user count.
  double join_fraction = 0.0;
  /// Probability (per epoch) that one random session changes its stream rate.
  double rate_change_prob = 0.0;
  /// New rate drawn log-uniformly in [rate/spread, rate*spread].
  double rate_change_spread = 2.0;
  /// Area side for (re)placement; 0 = infer from the initial state.
  double area_side_m = 0.0;
};

struct EventTrace {
  std::vector<std::vector<Event>> epochs;

  int n_epochs() const { return static_cast<int>(epochs.size()); }
  size_t n_events() const;
};

/// Generates a churn trace against `initial` (the state is copied and evolved
/// internally so join/leave slot ids are consistent). Deterministic in `rng`.
EventTrace generate_churn_trace(const NetworkState& initial, const TraceParams& params,
                                util::Rng& rng);

/// Serialization; from_text throws std::invalid_argument on malformed input.
std::string trace_to_text(const EventTrace& trace);
EventTrace trace_from_text(const std::string& text);
bool save_trace(const EventTrace& trace, const std::string& path);
EventTrace load_trace(const std::string& path);

/// Incremental trace parser over any istream: reads one epoch at a time so
/// `wmcast_cli serve` can solve while stdin is still arriving instead of
/// buffering a whole (possibly multi-GB) trace first. The header is parsed by
/// the constructor; each next_epoch() consumes one epoch record. Throws
/// std::invalid_argument on malformed input, exactly like trace_from_text
/// (which is implemented on top of this reader).
class TraceReader {
 public:
  /// Parses the "wmcast-trace v1" header + epoch count. The stream must
  /// outlive the reader.
  explicit TraceReader(std::istream& in);

  /// Declared epoch count from the header.
  int n_epochs() const { return n_epochs_; }
  /// Epochs consumed so far.
  int epochs_read() const { return next_; }

  /// Reads the next epoch's events into `out` (replacing its contents).
  /// Returns false when all declared epochs have been consumed. An epoch may
  /// legitimately be empty, so the return value — not out.empty() — signals
  /// end of trace.
  bool next_epoch(std::vector<Event>* out);

 private:
  std::istream& in_;
  int n_epochs_ = 0;
  int next_ = 0;
};

}  // namespace wmcast::ctrl
