#include "wmcast/ctrl/trace.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <fstream>
#include <limits>
#include <sstream>

#include "wmcast/util/assert.hpp"

namespace wmcast::ctrl {

size_t EventTrace::n_events() const {
  size_t n = 0;
  for (const auto& e : epochs) n += e.size();
  return n;
}

namespace {

double gaussian(util::Rng& rng) {
  // Box-Muller; u1 bounded away from 0 so the log is finite.
  const double u1 = std::max(rng.next_double(), 1e-12);
  const double u2 = rng.next_double();
  return std::sqrt(-2.0 * std::log(u1)) * std::cos(2.0 * 3.14159265358979323846 * u2);
}

}  // namespace

EventTrace generate_churn_trace(const NetworkState& initial, const TraceParams& params,
                                util::Rng& rng) {
  util::require(params.epochs >= 0, "generate_churn_trace: negative epoch count");
  for (const double f : {params.move_fraction, params.zap_fraction,
                         params.leave_fraction, params.join_fraction,
                         params.rate_change_prob}) {
    util::require(f >= 0.0 && f <= 1.0, "generate_churn_trace: fraction out of [0,1]");
  }
  util::require(params.rate_change_spread >= 1.0,
                "generate_churn_trace: rate spread must be >= 1");

  NetworkState st = initial;
  const double side = params.area_side_m > 0.0 ? params.area_side_m : st.area_side();
  const int initial_users = st.n_active();

  EventTrace trace;
  trace.epochs.reserve(static_cast<size_t>(params.epochs));
  for (int e = 0; e < params.epochs; ++e) {
    std::vector<Event> evs;

    for (int u = 0; u < st.n_slots(); ++u) {
      if (!st.slot(u).present) continue;
      if (rng.next_bool(params.leave_fraction)) {
        evs.push_back(Event::leave(u));
        continue;
      }
      if (rng.next_bool(params.move_fraction)) {
        wlan::Point p;
        if (params.walk_sigma_m > 0.0) {
          p = st.slot(u).pos;
          p.x = std::clamp(p.x + params.walk_sigma_m * gaussian(rng), 0.0, side);
          p.y = std::clamp(p.y + params.walk_sigma_m * gaussian(rng), 0.0, side);
        } else {
          p = {rng.uniform(0.0, side), rng.uniform(0.0, side)};
        }
        evs.push_back(Event::move(u, p));
      }
      if (st.n_sessions() > 1 && rng.next_bool(params.zap_fraction)) {
        const int old = st.slot(u).session;
        int next = rng.next_int(st.n_sessions() - 1);
        if (next >= old) ++next;
        evs.push_back(Event::subscribe(u, next));
      }
    }

    int fresh = 0;
    for (int k = 0; k < initial_users; ++k) {
      if (rng.next_bool(params.join_fraction)) {
        const wlan::Point p{rng.uniform(0.0, side), rng.uniform(0.0, side)};
        evs.push_back(Event::join(st.n_slots() + fresh, p, rng.next_int(st.n_sessions())));
        ++fresh;
      }
    }

    if (params.rate_change_prob > 0.0 && rng.next_bool(params.rate_change_prob)) {
      const int s = rng.next_int(st.n_sessions());
      const double span = std::log(params.rate_change_spread);
      const double r = st.session_rate(s) * std::exp(rng.uniform(-span, span));
      evs.push_back(Event::rate_change(s, r));
    }

    for (const auto& ev : evs) st.apply(ev);
    trace.epochs.push_back(std::move(evs));
  }
  return trace;
}

std::string trace_to_text(const EventTrace& trace) {
  std::ostringstream out;
  // max_digits10: coordinates and rates must survive the text round-trip
  // bit-exactly, or a replayed trace diverges from the generating run.
  out.precision(std::numeric_limits<double>::max_digits10);
  out << "wmcast-trace v1\n";
  out << "epochs " << trace.n_epochs() << "\n";
  for (int e = 0; e < trace.n_epochs(); ++e) {
    const auto& evs = trace.epochs[static_cast<size_t>(e)];
    out << "epoch " << e << " " << evs.size() << "\n";
    for (const auto& ev : evs) {
      out << event_type_name(ev.type);
      switch (ev.type) {
        case EventType::kUserJoin:
          out << " " << ev.user << " " << ev.pos.x << " " << ev.pos.y << " "
              << ev.session;
          break;
        case EventType::kUserLeave:
        case EventType::kUnsubscribe:
          out << " " << ev.user;
          break;
        case EventType::kUserMove:
          out << " " << ev.user << " " << ev.pos.x << " " << ev.pos.y;
          break;
        case EventType::kRateChange:
          out << " " << ev.session << " " << ev.rate_mbps;
          break;
        case EventType::kSubscribe:
          out << " " << ev.user << " " << ev.session;
          break;
      }
      out << "\n";
    }
  }
  return out.str();
}

TraceReader::TraceReader(std::istream& in) : in_(in) {
  std::string magic, version;
  util::require(static_cast<bool>(in_ >> magic >> version) && magic == "wmcast-trace" &&
                    version == "v1",
                "trace: bad header");
  std::string kw;
  util::require(
      static_cast<bool>(in_ >> kw >> n_epochs_) && kw == "epochs" && n_epochs_ >= 0,
      "trace: bad epoch count");
}

bool TraceReader::next_epoch(std::vector<Event>* out) {
  out->clear();
  if (next_ >= n_epochs_) return false;
  std::string kw;
  int index = 0;
  size_t n_events = 0;
  util::require(static_cast<bool>(in_ >> kw >> index >> n_events) && kw == "epoch" &&
                    index == next_,
                "trace: bad epoch record");
  out->reserve(n_events);
  for (size_t i = 0; i < n_events; ++i) {
    std::string name;
    util::require(static_cast<bool>(in_ >> name), "trace: truncated epoch");
    Event ev;
    ev.type = event_type_from_name(name);
    bool ok = false;
    switch (ev.type) {
      case EventType::kUserJoin:
        ok = static_cast<bool>(in_ >> ev.user >> ev.pos.x >> ev.pos.y >> ev.session);
        break;
      case EventType::kUserLeave:
      case EventType::kUnsubscribe:
        ok = static_cast<bool>(in_ >> ev.user);
        break;
      case EventType::kUserMove:
        ok = static_cast<bool>(in_ >> ev.user >> ev.pos.x >> ev.pos.y);
        break;
      case EventType::kRateChange:
        ok = static_cast<bool>(in_ >> ev.session >> ev.rate_mbps);
        break;
      case EventType::kSubscribe:
        ok = static_cast<bool>(in_ >> ev.user >> ev.session);
        break;
    }
    util::require(ok, "trace: malformed '" + name + "' event");
    out->push_back(ev);
  }
  ++next_;
  return true;
}

EventTrace trace_from_text(const std::string& text) {
  std::istringstream in(text);
  TraceReader reader(in);
  EventTrace trace;
  trace.epochs.reserve(static_cast<size_t>(reader.n_epochs()));
  std::vector<Event> evs;
  while (reader.next_epoch(&evs)) trace.epochs.push_back(evs);
  return trace;
}

bool save_trace(const EventTrace& trace, const std::string& path) {
  std::ofstream f(path);
  if (!f) {
    std::fprintf(stderr, "save_trace: cannot open %s\n", path.c_str());
    return false;
  }
  f << trace_to_text(trace);
  return static_cast<bool>(f);
}

EventTrace load_trace(const std::string& path) {
  std::ifstream f(path);
  util::require(static_cast<bool>(f), "load_trace: cannot open " + path);
  std::ostringstream buf;
  buf << f.rdbuf();
  return trace_from_text(buf.str());
}

}  // namespace wmcast::ctrl
