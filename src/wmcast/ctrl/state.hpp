// Mutable network state behind the association controller. The solver-side
// wlan::Scenario is immutable by design; NetworkState is the long-lived
// record the controller patches as events arrive, projected per epoch into a
// *compact* Scenario containing only the users that currently want service.
//
// Identifier spaces:
//  * slot  — stable controller-side user id (grows on joins, never shrinks);
//  * row   — index into the compact per-epoch Scenario; `row_slot` maps back.
#pragma once

#include <vector>

#include "wmcast/ctrl/events.hpp"
#include "wmcast/wlan/association.hpp"
#include "wmcast/wlan/grid_index.hpp"
#include "wmcast/wlan/rate_table.hpp"
#include "wmcast/wlan/scenario.hpp"

namespace wmcast::ctrl {

struct UserSlot {
  wlan::Point pos{};
  int session = 0;
  bool present = false;     // user is in the network
  bool subscribed = false;  // user wants its session served

  bool wants_service() const { return present && subscribed; }

  friend bool operator==(const UserSlot&, const UserSlot&) = default;
};

class NetworkState {
 public:
  NetworkState() = default;

  /// Seeds the state from a geometric scenario: every scenario user becomes a
  /// present, subscribed slot (slot id == scenario user id). The rate table
  /// must match the one the scenario was built with (the scenario itself does
  /// not retain it).
  static NetworkState from_scenario(const wlan::Scenario& sc,
                                    wlan::RateTable table = wlan::RateTable::ieee80211a());

  int n_aps() const { return static_cast<int>(ap_pos_.size()); }
  int n_slots() const { return static_cast<int>(slots_.size()); }
  int n_sessions() const { return static_cast<int>(session_rate_.size()); }
  double load_budget() const { return budget_; }
  double session_rate(int s) const { return session_rate_[static_cast<size_t>(s)]; }
  const wlan::RateTable& rate_table() const { return table_; }
  const std::vector<wlan::Point>& ap_positions() const { return ap_pos_; }
  const UserSlot& slot(int s) const { return slots_[static_cast<size_t>(s)]; }

  /// PHY rate AP `a` -> slot `s` at the slot's current position; 0 = out of
  /// range. Valid for any slot, present or not.
  double link_rate(int a, int s) const;

  /// Uniform grid over the AP positions (cell size = the rate table's
  /// coverage radius). AP positions never change after from_scenario, so the
  /// index is built once and shared by every range query.
  const wlan::GridIndex& ap_grid() const { return ap_grid_; }

  /// Calls fn(a) for every AP whose grid cell intersects the coverage disk
  /// around `p` — a superset of the in-range APs; callers filter by
  /// link_rate/distance. O(k) in the local AP density, not O(n_aps).
  template <typename Fn>
  void for_each_ap_near(const wlan::Point& p, Fn&& fn) const {
    ap_grid_.for_each_candidate(p, table_.range_m(), fn);
  }

  /// Side of the bounding square of all node positions (trace generation
  /// re-places movers inside it, mirroring wlan::churn_epoch).
  double area_side() const;

  /// Number of slots with wants_service().
  int n_active() const;

  /// Applies one event; throws std::invalid_argument when the event is
  /// malformed (join of a present user, move/subscribe of an absent one,
  /// unknown session, non-positive rate, slot id gaps). A join with
  /// user == n_slots() extends the slot space.
  void apply(const Event& e);

  /// Projects the compact scenario over slots with wants_service().
  /// `row_slot` (optional out) receives the row -> slot map.
  wlan::Scenario to_scenario(std::vector<int>* row_slot = nullptr) const;

  friend bool operator==(const NetworkState&, const NetworkState&) = default;

 private:
  std::vector<wlan::Point> ap_pos_;
  wlan::RateTable table_ = wlan::RateTable::ieee80211a();
  std::vector<double> session_rate_;
  double budget_ = 0.9;
  std::vector<UserSlot> slots_;
  wlan::GridIndex ap_grid_;  // derived from ap_pos_ + table_, built once
};

/// Expands a compact association (rows of `row_slot`) into slot space of size
/// `n_slots`; unmapped slots are kNoAp.
std::vector<int> slot_association(const wlan::Association& compact,
                                  const std::vector<int>& row_slot, int n_slots);

/// Projects a slot-space association onto compact rows (slots beyond the
/// association's size map to kNoAp).
wlan::Association compact_association(const std::vector<int>& slot_ap,
                                      const std::vector<int>& row_slot);

/// The controller's dirty-region rule. Given the state before and after a
/// drained batch and the pre-drain slot association, returns the slots that
/// must re-decide, sorted ascending:
///  * slots whose UserSlot changed (joined, left+returned, moved, zapped,
///    (un)subscribed) and still want service — except pure moves that change
///    no link rate to any AP (step rate tables make these common no-ops);
///  * slots that want service but are unassociated (unplaced work);
///  * subscribers of any session whose stream rate changed (their load
///    contribution moved everywhere);
///  * current members of any (AP, session) multicast group whose bottleneck
///    transmission rate moved because a directly-dirty member left it.
std::vector<int> compute_dirty_slots(const NetworkState& before,
                                     const NetworkState& after,
                                     const std::vector<int>& slot_ap);

}  // namespace wmcast::ctrl
