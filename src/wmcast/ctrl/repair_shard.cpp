#include "wmcast/ctrl/repair_shard.hpp"

#include <algorithm>
#include <limits>

#include "wmcast/assoc/policy.hpp"
#include "wmcast/util/assert.hpp"
#include "wmcast/util/fp.hpp"
#include "wmcast/wlan/association.hpp"

namespace wmcast::ctrl {

namespace {

/// Same tie tolerance as assoc/local_search.cpp: the polish below mirrors its
/// accept/reject arithmetic, only against task-local totals.
constexpr double kImproveEps = 1e-12;

int find_root(std::vector<int>& parent, int a) {
  while (parent[static_cast<size_t>(a)] != a) {
    parent[static_cast<size_t>(a)] = parent[static_cast<size_t>(parent[static_cast<size_t>(a)])];
    a = parent[static_cast<size_t>(a)];
  }
  return a;
}

void unite(std::vector<int>& parent, int a, int b) {
  const int ra = find_root(parent, a);
  const int rb = find_root(parent, b);
  if (ra != rb) parent[static_cast<size_t>(std::max(ra, rb))] = std::min(ra, rb);
}

/// One task's restricted local-search polish (kTotalLoad): the move loop of
/// assoc/local_search.cpp with the objective key evaluated against the
/// task-local (served, total) pair. Probes cost O(rate levels) through the
/// model; the probe/rollback deltas are added and subtracted on the running
/// total exactly as an accepted move would, so the epsilon tie-breaks see the
/// same rounding a physical trial sequence produces.
void polish_task(const wlan::Scenario& sc, const RepairShardParams& params,
                 const std::vector<int>& task_aps, std::vector<int>& user_ap,
                 std::vector<std::vector<int>>& members, wlan::LoadModel& model,
                 const std::vector<int>& movers) {
  double total = 0.0;
  for (const int a : task_aps) total += model.load(a);
  int served = 0;
  for (const int u : movers) {
    if (user_ap[static_cast<size_t>(u)] != wlan::kNoAp) ++served;
  }
  const int max_moves =
      std::max(100, params.polish_moves_per_dirty * static_cast<int>(movers.size()));

  struct Key {
    double k1, k2;
    bool better_than(const Key& o) const {
      if (k1 < o.k1 - kImproveEps) return true;
      if (k1 > o.k1 + kImproveEps) return false;
      return k2 < o.k2 - kImproveEps;
    }
  };

  int moves = 0;
  bool improved = true;
  while (improved && moves < max_moves) {
    improved = false;
    for (size_t mi = 0; mi < movers.size() && moves < max_moves; ++mi) {
      const int u = movers[mi];
      const int cur = user_ap[static_cast<size_t>(u)];
      const int s_u = sc.user_session(u);
      const Key before{static_cast<double>(-served), total};

      // The unplace half of every probe is the same: u leaves cur.
      double lc_wo = 0.0;
      double d_un = 0.0;
      if (cur != wlan::kNoAp) {
        lc_wo = model.load_without(cur, s_u, sc.link_rate(cur, u));
        d_un = lc_wo - model.load(cur);
      }
      const int probe_served = cur != wlan::kNoAp ? served : served + 1;

      int best_target = cur;
      double best_rate = 0.0;
      Key best_key = before;
      const auto neighbors = sc.aps_of_user(u);
      const double* rates = sc.rates_of_user(u);
      for (size_t i = 0; i < neighbors.size(); ++i) {
        const int a = neighbors[i];
        if (a == cur) continue;
        const double la_w = model.load_with(a, s_u, rates[i]);
        const double d_pl = la_w - model.load(a);
        double t = total;
        if (cur != wlan::kNoAp) t += d_un;
        t += d_pl;
        const bool feasible =
            !params.enforce_budget || util::fits_budget(la_w, sc.load_budget());
        const Key k{static_cast<double>(-probe_served), t};
        t -= d_pl;
        if (cur != wlan::kNoAp) t -= d_un;
        total = t;
        if (feasible && k.better_than(best_key)) {
          best_key = k;
          best_target = a;
          best_rate = rates[i];
        }
      }
      const bool serves_more = best_key.k1 < before.k1 - kImproveEps;
      const bool enough_gain =
          params.polish_min_gain <= 0.0 || serves_more ||
          before.k2 - best_key.k2 >= params.polish_min_gain - kImproveEps;
      if (best_target != cur && enough_gain) {
        if (cur != wlan::kNoAp) {
          auto& m = members[static_cast<size_t>(cur)];
          m.erase(std::find(m.begin(), m.end(), u));
          const double old = model.load(cur);
          total += model.remove(cur, s_u, sc.link_rate(cur, u)) - old;
          --served;
        }
        members[static_cast<size_t>(best_target)].push_back(u);
        const double old = model.load(best_target);
        total += model.add(best_target, s_u, best_rate) - old;
        user_ap[static_cast<size_t>(u)] = best_target;
        ++served;
        ++moves;
        improved = true;
      }
    }
  }
}

}  // namespace

void repair_sharded(const wlan::Scenario& sc, std::vector<int>& user_ap,
                    std::vector<std::vector<int>>& members,
                    const std::vector<int>& movable_rows,
                    const RepairShardParams& params, util::ThreadPool& pool,
                    std::vector<RepairLaneWorkspace>& lanes,
                    RepairShardStats* stats) {
  const int n_aps = sc.n_aps();

  // --- 1. union-find closure over the APs repair may touch. ----------------
  std::vector<int> parent(static_cast<size_t>(n_aps));
  for (int a = 0; a < n_aps; ++a) parent[static_cast<size_t>(a)] = a;
  for (const int u : movable_rows) {
    const auto nb = sc.aps_of_user(u);
    for (size_t i = 1; i < nb.size(); ++i) unite(parent, nb[0], nb[i]);
  }
  std::vector<int> over_budget;
  if (params.enforce_budget) {
    for (int a = 0; a < n_aps; ++a) {
      const double load = wlan::ap_load_for_members(
          sc, a, members[static_cast<size_t>(a)], params.multi_rate);
      if (util::exceeds_budget(load, sc.load_budget())) over_budget.push_back(a);
    }
    // Evictions turn an over-budget AP's members into movers: close the
    // component over every candidate AP they could land on.
    for (const int a : over_budget) {
      for (const int u : members[static_cast<size_t>(a)]) {
        for (const int b : sc.aps_of_user(u)) unite(parent, a, b);
      }
    }
  }

  // --- 2. components with work become tasks (ascending min-AP order). ------
  std::vector<char> root_has_work(static_cast<size_t>(n_aps), 0);
  for (const int u : movable_rows) {
    const auto nb = sc.aps_of_user(u);
    if (!nb.empty()) root_has_work[static_cast<size_t>(find_root(parent, nb[0]))] = 1;
  }
  for (const int a : over_budget) {
    root_has_work[static_cast<size_t>(find_root(parent, a))] = 1;
  }
  std::vector<int> task_of_root(static_cast<size_t>(n_aps), -1);
  std::vector<std::vector<int>> task_aps;
  for (int a = 0; a < n_aps; ++a) {
    const int r = find_root(parent, a);
    if (!root_has_work[static_cast<size_t>(r)]) continue;
    int& t = task_of_root[static_cast<size_t>(r)];
    if (t < 0) {
      t = static_cast<int>(task_aps.size());
      task_aps.emplace_back();
    }
    task_aps[static_cast<size_t>(t)].push_back(a);
  }
  const int n_tasks = static_cast<int>(task_aps.size());
  std::vector<std::vector<int>> task_movers(static_cast<size_t>(n_tasks));
  for (const int u : movable_rows) {
    const auto nb = sc.aps_of_user(u);
    if (nb.empty()) continue;  // nowhere to place; keeps its carried value
    const int t = task_of_root[static_cast<size_t>(find_root(parent, nb[0]))];
    task_movers[static_cast<size_t>(t)].push_back(u);
  }

  // Dispatch order: by (grid cell of the task's lowest AP, lowest AP id) when
  // the scenario carries geometry — neighboring APs' tasks then share a
  // static chunk and walk cache-adjacent rows. A pure function of the AP
  // layout, so the order (and every stat below) is thread-invariant.
  std::vector<int> order(static_cast<size_t>(n_tasks));
  for (int t = 0; t < n_tasks; ++t) order[static_cast<size_t>(t)] = t;
  const auto& pos = sc.ap_positions();
  if (pos.size() >= static_cast<size_t>(n_aps) && n_aps > 0) {
    const auto& grid = sc.ap_grid();
    std::sort(order.begin(), order.end(), [&](int x, int y) {
      const int ax = task_aps[static_cast<size_t>(x)].front();
      const int ay = task_aps[static_cast<size_t>(y)].front();
      const int64_t kx = grid.cell_key(pos[static_cast<size_t>(ax)]);
      const int64_t ky = grid.cell_key(pos[static_cast<size_t>(ay)]);
      if (kx != ky) return kx < ky;
      return ax < ay;
    });
  }

  if (stats != nullptr) {
    stats->shards = n_tasks;
    int total_movers = 0;
    int max_movers = 0;
    for (const auto& m : task_movers) {
      total_movers += static_cast<int>(m.size());
      max_movers = std::max(max_movers, static_cast<int>(m.size()));
    }
    stats->movers = total_movers;
    const double mean =
        n_tasks > 0 ? static_cast<double>(total_movers) / n_tasks : 0.0;
    stats->imbalance = mean > 0.0 ? static_cast<double>(max_movers) / mean
                                  : (n_tasks > 0 ? 1.0 : 0.0);
  }
  if (n_tasks == 0) return;

  // --- 3. per-task repair across the pool. ---------------------------------
  // Tasks touch disjoint APs and users, so they share user_ap / members /
  // the movable mask directly; only the load model and the pending/mover
  // lists are per-lane.
  std::vector<char> movable(static_cast<size_t>(sc.n_users()), 0);
  for (const int u : movable_rows) movable[static_cast<size_t>(u)] = 1;

  while (lanes.size() < static_cast<size_t>(pool.size())) lanes.emplace_back();
  for (size_t l = 0; l < static_cast<size_t>(pool.size()); ++l) {
    lanes[l].model.reset(sc, params.multi_rate);
  }

  assoc::PolicyParams pp;
  pp.objective = assoc::Objective::kTotalLoad;
  pp.enforce_budget = params.enforce_budget;
  pp.multi_rate = params.multi_rate;

  pool.parallel_for(0, n_tasks, [&](int64_t b, int64_t e, int lane) {
    RepairLaneWorkspace& ws = lanes[static_cast<size_t>(lane)];
    for (int64_t k = b; k < e; ++k) {
      const std::vector<int>& aps = task_aps[static_cast<size_t>(order[static_cast<size_t>(k)])];
      const std::vector<int>& base_movers =
          task_movers[static_cast<size_t>(order[static_cast<size_t>(k)])];
      ws.model.begin_scope();
      ws.pending.clear();
      ws.movers.assign(base_movers.begin(), base_movers.end());
      for (const int a : aps) {
        for (const int u : members[static_cast<size_t>(a)]) {
          ws.model.add(a, sc.user_session(u), sc.link_rate(a, u));
        }
      }
      for (const int u : base_movers) {
        if (user_ap[static_cast<size_t>(u)] == wlan::kNoAp) ws.pending.push_back(u);
      }

      // Budget peel: evict whoever frees the most load and re-place them.
      if (params.enforce_budget) {
        for (const int a : aps) {
          auto& m = members[static_cast<size_t>(a)];
          double load = ws.model.load(a);
          while (util::exceeds_budget(load, sc.load_budget()) && !m.empty()) {
            int best_u = m.front();
            double best_drop = -std::numeric_limits<double>::infinity();
            for (const int u : m) {
              const double drop =
                  load - ws.model.load_without(a, sc.user_session(u), sc.link_rate(a, u));
              if (drop > best_drop) {
                best_drop = drop;
                best_u = u;
              }
            }
            m.erase(std::find(m.begin(), m.end(), best_u));
            load = ws.model.remove(a, sc.user_session(best_u), sc.link_rate(a, best_u));
            user_ap[static_cast<size_t>(best_u)] = wlan::kNoAp;
            ws.pending.push_back(best_u);
            if (movable[static_cast<size_t>(best_u)] == 0) {
              movable[static_cast<size_t>(best_u)] = 1;
              ws.movers.push_back(best_u);
            }
          }
        }
      }

      // Greedy placement with the distributed decision rule.
      std::sort(ws.pending.begin(), ws.pending.end());
      for (const int u : ws.pending) {
        const int a = assoc::choose_best_ap(sc, ws.model, u, wlan::kNoAp, pp);
        if (a != wlan::kNoAp) {
          members[static_cast<size_t>(a)].push_back(u);
          ws.model.add(a, sc.user_session(u), sc.link_rate(a, u));
          user_ap[static_cast<size_t>(u)] = a;
        }
      }

      if (params.polish && !ws.movers.empty()) {
        polish_task(sc, params, aps, user_ap, members, ws.model, ws.movers);
      }
    }
  });
}

void build_component_tasks(const wlan::Scenario& sc,
                           const std::vector<int>& dirty_rows,
                           ComponentTasks& tasks, std::vector<int>& isolated) {
  tasks.rows.clear();
  tasks.order.clear();
  isolated.clear();
  const int n_aps = sc.n_aps();
  std::vector<int> parent(static_cast<size_t>(n_aps));
  for (int a = 0; a < n_aps; ++a) parent[static_cast<size_t>(a)] = a;
  for (const int u : dirty_rows) {
    const auto nb = sc.aps_of_user(u);
    for (size_t i = 1; i < nb.size(); ++i) unite(parent, nb[0], nb[i]);
  }

  // One task per component root with work. unite() always parents to the
  // smaller id, so a component's root IS its lowest united AP — the task key.
  std::vector<int> task_of_root(static_cast<size_t>(n_aps), -1);
  std::vector<int> task_key;
  for (const int u : dirty_rows) {
    const auto nb = sc.aps_of_user(u);
    if (nb.empty()) {
      isolated.push_back(u);
      continue;
    }
    const int r = find_root(parent, nb[0]);
    int& t = task_of_root[static_cast<size_t>(r)];
    if (t < 0) {
      t = static_cast<int>(tasks.rows.size());
      tasks.rows.emplace_back();
      task_key.push_back(r);
    }
    tasks.rows[static_cast<size_t>(t)].push_back(u);
  }

  const int n_tasks = static_cast<int>(tasks.rows.size());
  tasks.order.resize(static_cast<size_t>(n_tasks));
  for (int t = 0; t < n_tasks; ++t) tasks.order[static_cast<size_t>(t)] = t;
  const auto& pos = sc.ap_positions();
  if (pos.size() >= static_cast<size_t>(n_aps) && n_aps > 0) {
    const auto& grid = sc.ap_grid();
    std::sort(tasks.order.begin(), tasks.order.end(), [&](int x, int y) {
      const int ax = task_key[static_cast<size_t>(x)];
      const int ay = task_key[static_cast<size_t>(y)];
      const int64_t kx = grid.cell_key(pos[static_cast<size_t>(ax)]);
      const int64_t ky = grid.cell_key(pos[static_cast<size_t>(ay)]);
      if (kx != ky) return kx < ky;
      return ax < ay;
    });
  }
}

}  // namespace wmcast::ctrl
