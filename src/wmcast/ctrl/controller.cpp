#include "wmcast/ctrl/controller.hpp"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <limits>
#include <map>
#include <optional>

#include "wmcast/assoc/policy.hpp"
#include "wmcast/assoc/registry.hpp"
#include "wmcast/ctrl/engine_source.hpp"
#include "wmcast/util/assert.hpp"
#include "wmcast/util/fp.hpp"

namespace wmcast::ctrl {

namespace {

assoc::Objective policy_objective(assoc::SearchObjective o) {
  return o == assoc::SearchObjective::kMaxLoad ? assoc::Objective::kLoadVector
                                               : assoc::Objective::kTotalLoad;
}

double seconds_since(std::chrono::steady_clock::time_point t0) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - t0).count();
}

}  // namespace

AssociationController::AssociationController(const wlan::Scenario& initial,
                                             ControllerConfig cfg)
    : cfg_(std::move(cfg)),
      state_(NetworkState::from_scenario(initial, cfg_.rate_table)),
      compact_sc_(initial),
      rng_(cfg_.seed),
      pool_(util::ThreadPool::resolve_threads(cfg_.threads)) {
  util::require(assoc::is_algorithm(cfg_.full_solver),
                "AssociationController: unknown full solver '" + cfg_.full_solver + "'");
  util::require(cfg_.degradation_threshold >= 0.0,
                "AssociationController: negative degradation threshold");
  compact_sc_ = state_.to_scenario(&row_slot_);
  engine_.build_full(StateSource(state_), cfg_.multi_rate);
  sync_engine_stats(nullptr);
  const auto sol = solve_full(compact_sc_, row_slot_);
  slot_ap_ = slot_association(sol.assoc, row_slot_, state_.n_slots());
  loads_ = sol.loads;
  baseline_load_ = sol.loads.total_load;
  tele_.baseline_refreshes.inc();
  tele_.users_present.set(state_.n_slots());
  tele_.users_subscribed.set(state_.n_active());
  tele_.users_served.set(loads_.satisfied_users);
  tele_.total_load.set(loads_.total_load);
  tele_.max_load.set(loads_.max_load);
  tele_.baseline_load.set(baseline_load_);
  util::require(cfg_.k >= 1, "AssociationController: k must be >= 1");
  refresh_multi(nullptr);
}

void AssociationController::kconn_mark_dirty(const NetworkState& next,
                                             const std::vector<int>& new_slot_ap) {
  if (cfg_.k < 2) return;
  // Clear the previous epoch's marks (O(previous dirt), never O(network)).
  for (const int a : kconn_dirty_aps_) kconn_ap_mark_[static_cast<size_t>(a)] = 0;
  kconn_dirty_aps_.clear();
  for (const int s : kconn_dirty_slots_) kconn_slot_mark_[static_cast<size_t>(s)] = 0;
  kconn_dirty_slots_.clear();
  kconn_settle_hint_.clear();
  for (const int a : kconn_rescan_aps_) kconn_rescan_mark_[static_cast<size_t>(a)] = 0;
  kconn_rescan_aps_.clear();
  kconn_rate_changed_ = false;
  if (!multi_valid_) return;  // nothing to repair; the first derivation is cold

  for (int t = 0; t < next.n_sessions(); ++t) {
    if (t >= state_.n_sessions() || next.session_rate(t) != state_.session_rate(t)) {
      // Stream rates feed every plan row's budget estimate and every load
      // fold; no local region bounds the effect. Rebuild cold.
      kconn_rate_changed_ = true;
      return;
    }
  }

  if (kconn_ap_mark_.size() < static_cast<size_t>(next.n_aps())) {
    kconn_ap_mark_.resize(static_cast<size_t>(next.n_aps()), 0);
  }
  if (kconn_slot_mark_.size() < static_cast<size_t>(next.n_slots())) {
    kconn_slot_mark_.resize(static_cast<size_t>(next.n_slots()), 0);
  }
  if (kconn_rescan_mark_.size() < static_cast<size_t>(next.n_aps())) {
    kconn_rescan_mark_.resize(static_cast<size_t>(next.n_aps()), 0);
  }
  const auto mark_ap = [&](int a) {
    if (!kconn_ap_mark_[static_cast<size_t>(a)]) {
      kconn_ap_mark_[static_cast<size_t>(a)] = 1;
      kconn_dirty_aps_.push_back(a);
    }
  };
  const auto mark_slot = [&](int s) {
    if (!kconn_slot_mark_[static_cast<size_t>(s)]) {
      kconn_slot_mark_[static_cast<size_t>(s)] = 1;
      kconn_dirty_slots_.push_back(s);
    }
  };

  // Persistent pmin maintenance (kconn_plan_.pmin/pcount are valid here
  // because multi_valid_ holds and session/AP counts are epoch-stable). A
  // hearer ARRIVING in the (a, session) adopter pool can only lower the min —
  // an exact O(1) fold. A hearer DEPARTING can only raise it, and only if it
  // was the LAST member sitting at the min (802.11 rates are coarsely
  // quantized, so the min is usually shared — pcount tracks the tie), in
  // which case the row is queued for a full rescan at refresh time (after
  // commit, against the new projection). Everything else is an O(1) no-op.
  // This is what lets the incremental path re-plan a dirty AP in O(sessions)
  // instead of re-scanning its ~membership-sized CSR row.
  const auto mark_rescan = [&](int a) {
    if (!kconn_rescan_mark_[static_cast<size_t>(a)]) {
      kconn_rescan_mark_[static_cast<size_t>(a)] = 1;
      kconn_rescan_aps_.push_back(a);
    }
  };
  const auto pool_departure = [&](int a, int sess, double r) {
    const size_t at = kconn_plan_.at(a, sess);
    if (r == kconn_plan_.pmin[at]) {
      if (--kconn_plan_.pcount[at] == 0) mark_rescan(a);
    }
  };
  const auto pool_arrival = [&](int a, int sess, double r) {
    const size_t at = kconn_plan_.at(a, sess);
    double& pm = kconn_plan_.pmin[at];
    if (r < pm) {
      pm = r;
      kconn_plan_.pcount[at] = 1;
    } else if (r == pm) {
      ++kconn_plan_.pcount[at];
    }
  };

  std::vector<std::pair<int, double>> old_links;  // (ap, rate) before a move
  for (int s = 0; s < next.n_slots(); ++s) {
    const UserSlot before = s < state_.n_slots() ? state_.slot(s) : UserSlot{};
    const UserSlot& after = next.slot(s);
    const int old_ap = static_cast<size_t>(s) < slot_ap_.size()
                           ? slot_ap_[static_cast<size_t>(s)]
                           : wlan::kNoAp;
    const int new_ap = static_cast<size_t>(s) < new_slot_ap.size()
                           ? new_slot_ap[static_cast<size_t>(s)]
                           : wlan::kNoAp;
    // Pool membership = base-served: the slot contributes to the
    // potential-adopter min of every heard AP iff it is served in the base.
    const bool old_pool = before.wants_service() && old_ap != wlan::kNoAp;
    const bool new_pool = after.wants_service() && new_ap != wlan::kNoAp;
    if (!(before == after)) {
      // Invisible on both sides (e.g. a rejected admission, or a join+leave
      // coalescing to nothing): the projection never sees the slot, so the
      // overlay cannot depend on it. No dirt — this is what keeps
      // quiescent-equivalent epochs on the cached overlay.
      if (!before.wants_service() && !after.wants_service()) continue;
      mark_slot(s);
      if (old_ap != wlan::kNoAp) kconn_settle_hint_.push_back(old_ap);
      if (new_ap != wlan::kNoAp && new_ap != old_ap) {
        kconn_settle_hint_.push_back(new_ap);
      }
      const bool pure_move = old_pool && new_pool &&
                             before.session == after.session;
      if (pure_move) {
        // A relocation of a user that stays subscribed to the same session
        // and base-served only moves an AP's plan inputs where the DISCRETE
        // link rate to the user changed: equal rates contribute identically
        // to the potential-adopter mins. 802.11 rates are distance-quantized,
        // so a short walk usually leaves most heard APs' rates — and hence
        // their plans — untouched. This is what keeps a move's blast radius
        // small.
        const int sess = before.session;
        old_links.clear();
        state_.for_each_ap_near(before.pos, [&](int a) {
          const double r = state_.link_rate(a, s);
          if (r > 0.0) old_links.emplace_back(a, r);
        });
        next.for_each_ap_near(after.pos, [&](int a) {
          const double rn = next.link_rate(a, s);
          if (rn <= 0.0) return;
          for (auto& [oa, orate] : old_links) {
            if (oa == a) {
              if (orate != rn) {
                mark_ap(a);
                pool_departure(a, sess, orate);
                pool_arrival(a, sess, rn);
              }
              orate = -1.0;  // matched: not old-only
              return;
            }
          }
          mark_ap(a);  // newly in range
          pool_arrival(a, sess, rn);
        });
        for (const auto& [oa, orate] : old_links) {
          if (orate > 0.0) {
            mark_ap(oa);  // dropped out of range
            pool_departure(oa, sess, orate);
          }
        }
        // A forced handoff on top of the move changes both groups' base
        // memberships (and hence base tx / load of both primaries).
        if (old_ap != new_ap) {
          mark_ap(old_ap);
          mark_ap(new_ap);
        }
        continue;
      }
      // Joins, leaves, zaps, (un)subscribes and serve-status flips change the
      // slot's base-served status or session: every AP that could hear it
      // before or after has its potential-adopter mins moved.
      if (before.wants_service()) {
        state_.for_each_ap_near(before.pos, [&](int a) {
          const double r = state_.link_rate(a, s);
          if (r <= 0.0) return;
          mark_ap(a);
          if (old_pool) pool_departure(a, before.session, r);
        });
      }
      if (after.wants_service()) {
        next.for_each_ap_near(after.pos, [&](int a) {
          const double r = next.link_rate(a, s);
          if (r <= 0.0) return;
          mark_ap(a);
          if (new_pool) pool_arrival(a, after.session, r);
        });
      }
      continue;
    }
    if (old_ap == new_ap) continue;
    // Same record, different committed primary: the slot's served-set must be
    // re-derived and the stream plans of the affected APs re-planned.
    mark_slot(s);
    if (old_ap != wlan::kNoAp) kconn_settle_hint_.push_back(old_ap);
    if (new_ap != wlan::kNoAp) kconn_settle_hint_.push_back(new_ap);
    if (old_ap != wlan::kNoAp && new_ap != wlan::kNoAp) {
      // A handoff moves the user between two multicast groups; other heard
      // APs see the same base-served hearer as before — and the adopter pools
      // key on served-ness, not the primary, so pmin is untouched everywhere.
      mark_ap(old_ap);
      mark_ap(new_ap);
    } else {
      // Served <-> unserved flips the slot's base-served status, which feeds
      // the potential-adopter min of EVERY heard AP's silent streams. The
      // record did not change, so old and new link rates coincide.
      state_.for_each_ap_near(before.pos, [&](int a) {
        const double r = state_.link_rate(a, s);
        if (r <= 0.0) return;
        mark_ap(a);
        if (old_ap != wlan::kNoAp) {
          pool_departure(a, before.session, r);
        } else {
          pool_arrival(a, before.session, r);
        }
      });
    }
  }
  std::sort(kconn_dirty_aps_.begin(), kconn_dirty_aps_.end());
  std::sort(kconn_dirty_slots_.begin(), kconn_dirty_slots_.end());
}

void AssociationController::refresh_multi(EpochReport* rep) {
  if (cfg_.k < 2) return;
  // Every exit path (quiescent, cold, incremental) accumulates into
  // kconn_seconds_ so benches can isolate the overlay step's cost.
  struct Timer {
    double* acc;
    std::chrono::steady_clock::time_point t0 = std::chrono::steady_clock::now();
    ~Timer() {
      *acc += std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
                  .count();
    }
  } timer{&kconn_seconds_};
  const int n = compact_sc_.n_users();
  const int n_aps = compact_sc_.n_aps();

  // kconn-quiescent epoch: nothing the overlay reads moved (no visible record
  // change, no committed AP change, no rate change), so the cached overlay,
  // tx table and load report are all still exact — including across rejected
  // admissions and other invisible-slot churn.
  if (multi_valid_ && !kconn_rate_changed_ && kconn_dirty_aps_.empty() &&
      kconn_dirty_slots_.empty()) {
    if (rep != nullptr) {
      rep->multi_served_users = multi_loads_.multi_served_users;
      rep->mean_effective_rate = multi_loads_.mean_effective_rate;
    }
    return;
  }

  assoc::KconnParams kp;
  kp.k = cfg_.k;
  kp.multi_rate = cfg_.multi_rate;
  kp.enforce_budget = cfg_.enforce_budget;

  // The committed primary view in this epoch's row space.
  wlan::Association row_assoc = wlan::Association::none(n);
  for (int r = 0; r < n; ++r) {
    row_assoc.user_ap[static_cast<size_t>(r)] =
        slot_ap_[static_cast<size_t>(row_slot_[static_cast<size_t>(r)])];
  }

  if (kconn_plan_.n_aps != n_aps ||
      kconn_plan_.n_sessions != compact_sc_.n_sessions()) {
    kconn_plan_.resize(n_aps, compact_sc_.n_sessions());
    kconn_tx_.assign(static_cast<size_t>(n_aps),
                     std::vector<double>(
                         static_cast<size_t>(compact_sc_.n_sessions()), 0.0));
  }
  if (kconn_served_.size() < static_cast<size_t>(state_.n_slots())) {
    kconn_served_.resize(static_cast<size_t>(state_.n_slots()));
  }
  if (kconn_lanes_.size() < static_cast<size_t>(pool_.size())) {
    kconn_lanes_.resize(static_cast<size_t>(pool_.size()));
  }

  const bool cold =
      !multi_valid_ || kconn_rate_changed_ || !cfg_.kconn_incremental;
  if (cold) {
    // Serial full re-derivation: plan every AP, derive every row, settle
    // every AP. This is the reference the chaos oracle and the bench cold leg
    // compare the incremental path against.
    for (int a = 0; a < n_aps; ++a) {
      assoc::kconn_plan_ap(compact_sc_, row_assoc, loads_, kp, a, kconn_plan_);
    }
    if (multi_assoc_.n_users() != n) multi_assoc_.user_aps.resize(static_cast<size_t>(n));
    for (int r = 0; r < n; ++r) {
      assoc::kconn_derive_user(compact_sc_, row_assoc, kconn_plan_, kp, r,
                               multi_assoc_.user_aps[static_cast<size_t>(r)],
                               kconn_lanes_[0]);
    }
    for (auto& served : kconn_served_) served.clear();
    for (int r = 0; r < n; ++r) {
      kconn_served_[static_cast<size_t>(row_slot_[static_cast<size_t>(r)])] =
          multi_assoc_.user_aps[static_cast<size_t>(r)];
    }
    for (int a = 0; a < n_aps; ++a) {
      assoc::kconn_settle_ap(compact_sc_, loads_, kp, kconn_plan_, multi_assoc_,
                             a, kconn_tx_[static_cast<size_t>(a)].data());
    }
    tele_.engine_kconn_rebuilds.inc();
    if (rep != nullptr) rep->kconn_rebuild = true;
  } else {
    // Incremental dirty-region repair (DESIGN.md §16). Correctness rests on
    // the marking invariants (kconn_mark_dirty): every AP whose plan inputs
    // moved is in kconn_dirty_aps_ with its pmin row delta-maintained (or
    // queued for rescan), and every slot whose served-set inputs moved is in
    // kconn_dirty_slots_ or hears a changed plan row.
    //
    // 1. Refresh the plan rows of the dirty APs: rescan the pmin row only
    //    where a departure delta may have removed the min, then re-derive
    //    advert/startable in O(sessions) from the maintained pmin. Track
    //    which (AP, session) plan entries actually CHANGED: derivation reads
    //    nothing of an AP but its plan entries for the user's own session, so
    //    a dirty AP whose re-planned entry is bitwise unchanged cannot move
    //    any clean hearer's served-set (hearers whose own heard-set, links or
    //    primary moved have dirty slots and enter U through them). This is
    //    what keeps the blast radius of a move — which dirties every AP in
    //    hearing range — from pulling the whole neighborhood into U.
    const int n_sessions = compact_sc_.n_sessions();
    std::vector<int> changed_aps;
    std::vector<std::pair<int, int>> changed_pairs;  // (ap, session), ap-major
    std::vector<double> prev_advert(static_cast<size_t>(n_sessions));
    std::vector<char> prev_startable(static_cast<size_t>(n_sessions));
    for (const int a : kconn_dirty_aps_) {
      const size_t row = kconn_plan_.at(a, 0);
      std::copy_n(kconn_plan_.advert.begin() + static_cast<ptrdiff_t>(row),
                  n_sessions, prev_advert.begin());
      std::copy_n(kconn_plan_.startable.begin() + static_cast<ptrdiff_t>(row),
                  n_sessions, prev_startable.begin());
      if (kconn_rescan_mark_[static_cast<size_t>(a)]) {
        assoc::kconn_scan_pmin(compact_sc_, row_assoc, a, kconn_plan_);
      }
      assoc::kconn_plan_from_pmin(compact_sc_, loads_, kp, a, kconn_plan_);
      bool changed = false;
      for (int s = 0; s < n_sessions; ++s) {
        if (kconn_plan_.advert[row + static_cast<size_t>(s)] !=
                prev_advert[static_cast<size_t>(s)] ||
            kconn_plan_.startable[row + static_cast<size_t>(s)] !=
                prev_startable[static_cast<size_t>(s)]) {
          changed_pairs.emplace_back(a, s);
          changed = true;
        }
      }
      if (changed) changed_aps.push_back(a);
    }

    // 2. The dirty rows U: rows of dirty slots, plus rows hearing a changed
    //    (AP, session) plan entry FOR THEIR OWN SESSION (a served-set can
    //    only contain heard APs, a user only reads its session's plan
    //    entries, and a clean slot's heard-set did not change — so U covers
    //    every row whose derivation inputs moved).
    std::vector<int> slot_row(static_cast<size_t>(state_.n_slots()), -1);
    for (int r = 0; r < n; ++r) {
      slot_row[static_cast<size_t>(row_slot_[static_cast<size_t>(r)])] = r;
    }
    std::vector<char> row_dirty(static_cast<size_t>(n), 0);
    for (const int s : kconn_dirty_slots_) {
      if (s < static_cast<int>(slot_row.size()) &&
          slot_row[static_cast<size_t>(s)] >= 0) {
        row_dirty[static_cast<size_t>(slot_row[static_cast<size_t>(s)])] = 1;
      }
    }
    for (size_t i = 0; i < changed_pairs.size();) {
      const int a = changed_pairs[i].first;
      size_t j = i;
      while (j < changed_pairs.size() && changed_pairs[j].first == a) ++j;
      const wlan::IndexSpan members = compact_sc_.users_of_ap(a);
      for (size_t m = 0; m < members.size(); ++m) {
        const int r = members[m];
        if (row_dirty[static_cast<size_t>(r)]) continue;
        const int us = compact_sc_.user_session(r);
        for (size_t t = i; t < j; ++t) {
          if (changed_pairs[t].second == us) {
            row_dirty[static_cast<size_t>(r)] = 1;
            break;
          }
        }
      }
      i = j;
    }
    std::vector<int> dirty_rows;
    for (int r = 0; r < n; ++r) {
      if (row_dirty[static_cast<size_t>(r)]) dirty_rows.push_back(r);
    }

    // 3. Settle set: every AP whose settle inputs can have moved — a changed
    //    plan row (changed_aps), a changed base tx / membership (the old and
    //    new primaries of dirty slots, collected by kconn_mark_dirty), or a
    //    changed adopter contribution: the old served-sets of DEPARTED dirty
    //    slots (whose store entries are retired here); surviving rows mark
    //    after derivation, and only when their adopter contribution actually
    //    moved. A dirty AP outside these sets kept its plan row, base tx,
    //    members' links and members' serves, so its settled tx row is
    //    unchanged by construction.
    std::vector<char> settle_mark(static_cast<size_t>(n_aps), 0);
    std::vector<int> settle_aps;
    const auto mark_settle = [&](int a) {
      if (!settle_mark[static_cast<size_t>(a)]) {
        settle_mark[static_cast<size_t>(a)] = 1;
        settle_aps.push_back(a);
      }
    };
    for (const int a : changed_aps) mark_settle(a);
    for (const int a : kconn_settle_hint_) mark_settle(a);
    for (const int s : kconn_dirty_slots_) {
      if (static_cast<size_t>(s) >= kconn_served_.size()) continue;
      const bool departed = s >= static_cast<int>(slot_row.size()) ||
                            slot_row[static_cast<size_t>(s)] < 0;
      if (!departed) continue;
      for (const int a : kconn_served_[static_cast<size_t>(s)]) mark_settle(a);
      kconn_served_[static_cast<size_t>(s)].clear();
    }

    // 4. Rebuild the row-space overlay: carried rows copy their slot's stored
    //    served-set; dirty rows are re-derived in parallel over AP-connected
    //    components (disjoint row sets -> disjoint writes, fixed task order
    //    -> bitwise identical at any thread count; per-phase inputs are all
    //    read-only).
    if (multi_assoc_.n_users() != n) multi_assoc_.user_aps.resize(static_cast<size_t>(n));
    for (int r = 0; r < n; ++r) {
      if (!row_dirty[static_cast<size_t>(r)]) {
        multi_assoc_.user_aps[static_cast<size_t>(r)] =
            kconn_served_[static_cast<size_t>(row_slot_[static_cast<size_t>(r)])];
      }
    }
    ComponentTasks tasks;
    std::vector<int> isolated;
    build_component_tasks(compact_sc_, dirty_rows, tasks, isolated);
    pool_.parallel_for(
        0, static_cast<int64_t>(tasks.order.size()),
        [&](int64_t b, int64_t e, int lane) {
          for (int64_t i = b; i < e; ++i) {
            const int t = tasks.order[static_cast<size_t>(i)];
            for (const int r : tasks.rows[static_cast<size_t>(t)]) {
              assoc::kconn_derive_user(
                  compact_sc_, row_assoc, kconn_plan_, kp, r,
                  multi_assoc_.user_aps[static_cast<size_t>(r)],
                  kconn_lanes_[static_cast<size_t>(lane)]);
            }
          }
        });
    for (const int r : isolated) {
      assoc::kconn_derive_user(compact_sc_, row_assoc, kconn_plan_, kp, r,
                               multi_assoc_.user_aps[static_cast<size_t>(r)],
                               kconn_lanes_[0]);
    }
    // Re-derived rows settle-mark their old AND new served APs — but only
    // when the adopter contribution moved: a row pulled into U by a changed
    // plan entry that re-derives the identical served-set, with its record
    // (and hence its link rates) untouched, contributes the same rate to the
    // same adopter mins as before. Dirty SLOTS always mark: their links may
    // have changed even where the served-set did not.
    for (const int r : dirty_rows) {
      const int s = row_slot_[static_cast<size_t>(r)];
      auto& stored = kconn_served_[static_cast<size_t>(s)];
      const auto& fresh = multi_assoc_.user_aps[static_cast<size_t>(r)];
      const bool slot_dirty = static_cast<size_t>(s) < kconn_slot_mark_.size() &&
                              kconn_slot_mark_[static_cast<size_t>(s)] != 0;
      if (slot_dirty || stored != fresh) {
        for (const int a : stored) mark_settle(a);
        for (const int a : fresh) mark_settle(a);
        stored = fresh;
      }
    }

    // 5. Re-settle only the touched APs; every other tx row's inputs (its
    //    members, their served flags, its base tx and plan row) are unmoved.
    for (const int a : settle_aps) {
      assoc::kconn_settle_ap(compact_sc_, loads_, kp, kconn_plan_, multi_assoc_,
                             a, kconn_tx_[static_cast<size_t>(a)].data());
    }

    tele_.engine_kconn_repairs.inc();
    tele_.engine_kconn_repaired_users.inc(dirty_rows.size());
    tele_.engine_kconn_carried_users.inc(static_cast<uint64_t>(n) -
                                         dirty_rows.size());
    if (rep != nullptr) {
      rep->kconn_repaired_users = static_cast<int>(dirty_rows.size());
      rep->kconn_carried_users = n - static_cast<int>(dirty_rows.size());
    }
  }

  // 6. Fold the settled tx table into the load report in the reference
  //    accumulation order — bitwise identical to compute_multi_loads on both
  //    paths.
  multi_loads_ = assoc::kconn_collect_loads(compact_sc_, multi_assoc_, kconn_tx_);
  multi_valid_ = true;
  if (rep != nullptr) {
    rep->multi_served_users = multi_loads_.multi_served_users;
    rep->mean_effective_rate = multi_loads_.mean_effective_rate;
  }
}

assoc::Solution AssociationController::solve_full(const wlan::Scenario& sc,
                                                  const std::vector<int>& row_slot) {
  if (sc.n_users() == 0) {
    return assoc::make_solution(cfg_.full_solver, sc, wlan::Association::none(0),
                                cfg_.multi_rate);
  }
  // Fast path: the default solver (MLA-C = greedy set cover) runs directly on
  // the maintained slot-space engine instead of re-projecting the scenario
  // into a fresh set system. The engine enumerates sets in the same (AP,
  // session, descending rate) order the reduction does and rows are slots in
  // ascending order, so the greedy picks — and hence the association — are
  // identical to the registry path.
  if (cfg_.full_solver == "mla-c" && cfg_.multi_rate) {
    const auto t0 = std::chrono::steady_clock::now();
    core::CoverResult greedy;
    if (pool_.size() > 1) {
      // Sharded per-session solve across the pool. The chosen *set* — and
      // hence the first-chosen-wins association below — matches the joint
      // greedy exactly (sets of one session never cover another session's
      // slots), so this path commits the same association as threads = 1.
      shards_.build(engine_);
      core::ParallelStats pstats;
      greedy = core::parallel_greedy_cover(engine_, pool_, shard_ws_, shards_,
                                           &pstats);
      tele_.engine_parallel_solves.inc();
      tele_.engine_parallel_tasks.inc(static_cast<uint64_t>(pstats.tasks));
      tele_.engine_parallel_workers.set(pstats.workers);
      tele_.engine_parallel_imbalance.set(pstats.imbalance);
      tele_.engine_parallel_arena_peak_bytes.set(
          static_cast<double>(pstats.arena_high_water_bytes));
      tele_.engine_parallel_arena_reserved_bytes.set(
          static_cast<double>(pstats.arena_reserved_bytes));
    } else {
      greedy = core::greedy_cover(engine_, solve_ws_);
    }
    slot_row_.assign(static_cast<size_t>(engine_.n_elements()), -1);
    for (int r = 0; r < sc.n_users(); ++r) {
      slot_row_[static_cast<size_t>(row_slot[static_cast<size_t>(r)])] = r;
    }
    auto assoc = wlan::Association::none(sc.n_users());
    for (const int j : greedy.chosen) {
      const int a = engine_.ap(j);
      for (const int32_t slot : engine_.members(j)) {
        const int r = slot_row_[static_cast<size_t>(slot)];
        if (r >= 0 && assoc.user_ap[static_cast<size_t>(r)] == wlan::kNoAp) {
          assoc.user_ap[static_cast<size_t>(r)] = a;
        }
      }
    }
    auto sol = assoc::make_solution("MLA-C", sc, std::move(assoc), cfg_.multi_rate);
    sol.solve_seconds = seconds_since(t0);
    return sol;
  }
  assoc::SolveOptions opt;
  opt.multi_rate = cfg_.multi_rate;
  return assoc::solve_by_name(cfg_.full_solver, sc, rng_, opt);
}

void AssociationController::mark_engine_dirty(const NetworkState& next) {
  if (group_mark_.size() < static_cast<size_t>(next.n_aps())) {
    group_mark_.resize(static_cast<size_t>(next.n_aps()), 0);
  }
  const auto mark = [&](int a) {
    if (!group_mark_[static_cast<size_t>(a)]) {
      group_mark_[static_cast<size_t>(a)] = 1;
      dirty_groups_.push_back(a);
    }
  };

  bool rate_changed = false;
  for (int t = 0; t < next.n_sessions() && !rate_changed; ++t) {
    rate_changed = next.session_rate(t) != state_.session_rate(t);
  }
  if (rate_changed) {
    // A stream-rate change reprices every set of that session; rebuild all.
    for (int a = 0; a < next.n_aps(); ++a) mark(a);
  } else {
    std::vector<int> near;  // reused per slot
    for (int s = 0; s < next.n_slots(); ++s) {
      if (s < state_.n_slots() && state_.slot(s) == next.slot(s)) continue;
      // APs that held this slot before: exactly the groups of the sets the
      // inverted index lists for it. Across deferred epochs the index still
      // reflects the last flush, so re-marking yields the same "from" APs.
      if (s < engine_.n_elements()) {
        engine_.for_each_set_of(s, [&](int j) { mark(engine_.ap(j)); });
      }
      // APs that gain it now: anything in range of the new position, found
      // through the AP grid in O(k). Sorted before marking so the marks land
      // in the same ascending order the pre-grid full scan produced —
      // dirty_groups_ order feeds set-id assignment, which is deterministic.
      if (next.slot(s).wants_service()) {
        near.clear();
        next.for_each_ap_near(next.slot(s).pos, [&](int a) {
          if (next.link_rate(a, s) > 0.0) near.push_back(a);
        });
        std::sort(near.begin(), near.end());
        for (const int a : near) mark(a);
      }
    }
  }
  if (!dirty_groups_.empty() || next.n_slots() > engine_.n_elements()) {
    engine_flush_pending_ = true;
  }
}

void AssociationController::flush_engine(const NetworkState& st) {
  if (!engine_flush_pending_) return;
  // Rescan dirty groups in (grid cell, ap) order: neighboring APs share most
  // of their member slots, so walking their CSR rows back-to-back hits the
  // per-slot data while it is still cache-hot. The key is a pure function of
  // the AP layout, so set-id assignment — and hence solver tie-breaks — stays
  // deterministic for a given accumulated mark set. States built from
  // explicit link rates carry no AP geometry; they keep insertion order.
  const auto& grid = st.ap_grid();
  const auto& pos = st.ap_positions();
  const bool have_geometry =
      !dirty_groups_.empty() &&
      pos.size() > static_cast<size_t>(*std::max_element(dirty_groups_.begin(),
                                                         dirty_groups_.end()));
  if (have_geometry) {
    std::sort(dirty_groups_.begin(), dirty_groups_.end(), [&](int a, int b) {
      const int64_t ka = grid.cell_key(pos[static_cast<size_t>(a)]);
      const int64_t kb = grid.cell_key(pos[static_cast<size_t>(b)]);
      if (ka != kb) return ka < kb;
      return a < b;
    });
  }
  engine_.update_groups(StateSource(st), dirty_groups_, cfg_.multi_rate);
  for (const int a : dirty_groups_) group_mark_[static_cast<size_t>(a)] = 0;
  dirty_groups_.clear();
  engine_flush_pending_ = false;
}

void AssociationController::sync_engine_stats(EpochReport* rep) {
  const core::EngineStats& now = engine_.stats();
  const core::EngineStats& old = engine_stats_synced_;
  if (rep != nullptr) {
    rep->engine_groups_rebuilt = static_cast<int>(now.groups_rebuilt - old.groups_rebuilt);
    rep->engine_sets_rebuilt = static_cast<int>(now.sets_rebuilt - old.sets_rebuilt);
    rep->engine_sets_retired = static_cast<int>(now.sets_retired - old.sets_retired);
    rep->engine_compacted = now.compactions > old.compactions;
  }
  tele_.engine_full_builds.inc(now.full_builds - old.full_builds);
  tele_.engine_incremental_updates.inc(now.incremental_updates - old.incremental_updates);
  tele_.engine_groups_rebuilt.inc(now.groups_rebuilt - old.groups_rebuilt);
  tele_.engine_sets_rebuilt.inc(now.sets_rebuilt - old.sets_rebuilt);
  tele_.engine_sets_retired.inc(now.sets_retired - old.sets_retired);
  tele_.engine_compactions.inc(now.compactions - old.compactions);
  engine_stats_synced_ = now;
}

bool AssociationController::admit(const JoinRequest& req) const {
  if (!cfg_.admission_control) return true;
  if (cfg_.admission_hook) return cfg_.admission_hook(req, loads_.ap_load, state_);

  // Built-in budget gate: admit iff some in-range AP can absorb the user's
  // exact marginal load (the multicast group's bottleneck rate after the
  // join) within the scenario budget — MNU's per-AP budget semantics applied
  // at the door.
  const double stream = req.session < state_.n_sessions()
                            ? state_.session_rate(req.session)
                            : 0.0;
  if (stream <= 0.0) return false;
  // Any-fit over the in-range APs only (grid query; order-free boolean).
  bool ok = false;
  state_.for_each_ap_near(req.pos, [&](int a) {
    if (ok) return;
    const double r = state_.rate_table().rate_for_distance(
        wlan::distance(state_.ap_positions()[static_cast<size_t>(a)], req.pos));
    if (r <= 0.0) return;
    const double old_tx =
        static_cast<size_t>(a) < loads_.tx_rate.size()
            ? loads_.tx_rate[static_cast<size_t>(a)][static_cast<size_t>(req.session)]
            : 0.0;
    const double new_tx = old_tx > 0.0 ? std::min(old_tx, r) : r;
    const double marginal = stream / new_tx - (old_tx > 0.0 ? stream / old_tx : 0.0);
    const double load = static_cast<size_t>(a) < loads_.ap_load.size()
                            ? loads_.ap_load[static_cast<size_t>(a)]
                            : 0.0;
    if (util::fits_budget(load + marginal, state_.load_budget())) ok = true;
  });
  return ok;
}

wlan::Association AssociationController::repair(const wlan::Scenario& sc,
                                                const wlan::Association& carried,
                                                const std::vector<int>& movable_rows,
                                                bool polish) {
  const int n = sc.n_users();
  // All per-AP/per-user scratch lives in the reusable workspace; the polish
  // pass below re-prepares the same workspace once the lists here are spent.
  repair_ws_.prepare(sc.n_aps(), n);
  std::vector<int>& user_ap = repair_ws_.user_ap;
  user_ap = carried.user_ap;
  std::vector<std::vector<int>>& members = repair_ws_.members;
  for (int u = 0; u < n; ++u) {
    if (user_ap[static_cast<size_t>(u)] != wlan::kNoAp) {
      members[static_cast<size_t>(user_ap[static_cast<size_t>(u)])].push_back(u);
    }
  }

  // Sharded fast path (ctrl/repair_shard.hpp): AP-disjoint component tasks
  // across the pool, peel + greedy + task-local polish per shard. Bitwise
  // identical at any thread count; kTotalLoad only.
  if (cfg_.shard_repair && cfg_.objective == assoc::SearchObjective::kTotalLoad) {
    RepairShardParams rp;
    rp.enforce_budget = cfg_.enforce_budget;
    rp.multi_rate = cfg_.multi_rate;
    rp.polish = polish;
    rp.polish_moves_per_dirty = cfg_.polish_moves_per_dirty;
    rp.polish_min_gain = cfg_.polish_min_gain;
    repair_sharded(sc, user_ap, members, movable_rows, rp, pool_, repair_lanes_,
                   &last_repair_stats_);
    tele_.engine_parallel_repair_calls.inc();
    tele_.engine_parallel_repair_shards.inc(
        static_cast<uint64_t>(last_repair_stats_.shards));
    tele_.engine_parallel_repair_imbalance.set(last_repair_stats_.imbalance);
    return wlan::Association{user_ap};
  }
  last_repair_stats_ = RepairShardStats{};

  std::vector<int>& movable = repair_ws_.decision;  // 0/1 mask
  movable.assign(static_cast<size_t>(n), 0);
  std::vector<int> movers = movable_rows;
  std::vector<int>& pending = repair_ws_.scratch;
  pending.clear();
  for (const int u : movable_rows) {
    movable[static_cast<size_t>(u)] = 1;
    if (user_ap[static_cast<size_t>(u)] == wlan::kNoAp) pending.push_back(u);
  }

  // Loads probed through the incremental model (wlan/load_model.hpp):
  // bit-identical to the ap_load_for_members rescans this path used to run,
  // at O(rate levels) per probe instead of O(members).
  repair_model_.reset(sc, cfg_.multi_rate);
  for (int u = 0; u < n; ++u) {
    const int a = user_ap[static_cast<size_t>(u)];
    if (a != wlan::kNoAp) {
      repair_model_.add(a, sc.user_session(u), sc.link_rate(a, u));
    }
  }

  // Budget peel over the carried part: a rate change or zap can push a kept
  // AP over budget; evict whoever frees the most load and re-place them.
  if (cfg_.enforce_budget) {
    for (int a = 0; a < sc.n_aps(); ++a) {
      auto& m = members[static_cast<size_t>(a)];
      double load = repair_model_.load(a);
      while (util::exceeds_budget(load, sc.load_budget()) && !m.empty()) {
        int best_u = m.front();
        double best_drop = -std::numeric_limits<double>::infinity();
        for (const int u : m) {
          const double drop = load - repair_model_.load_without(
                                         a, sc.user_session(u), sc.link_rate(a, u));
          if (drop > best_drop) {
            best_drop = drop;
            best_u = u;
          }
        }
        m.erase(std::find(m.begin(), m.end(), best_u));
        load = repair_model_.remove(a, sc.user_session(best_u),
                                    sc.link_rate(a, best_u));
        user_ap[static_cast<size_t>(best_u)] = wlan::kNoAp;
        pending.push_back(best_u);
        if (movable[static_cast<size_t>(best_u)] == 0) {
          movable[static_cast<size_t>(best_u)] = 1;
          movers.push_back(best_u);
        }
      }
    }
  }

  // Greedy placement with the distributed decision rule.
  assoc::PolicyParams pp;
  pp.objective = policy_objective(cfg_.objective);
  pp.enforce_budget = cfg_.enforce_budget;
  pp.multi_rate = cfg_.multi_rate;
  std::sort(pending.begin(), pending.end());
  for (const int u : pending) {
    const int a = assoc::choose_best_ap(sc, repair_model_, u, wlan::kNoAp, pp);
    if (a != wlan::kNoAp) {
      members[static_cast<size_t>(a)].push_back(u);
      repair_model_.add(a, sc.user_session(u), sc.link_rate(a, u));
      user_ap[static_cast<size_t>(u)] = a;
    }
  }

  // Copy (not move) the assignment out: the workspace is reused by the
  // restricted local search below and by the next epoch.
  wlan::Association out{user_ap};
  if (polish && !movers.empty()) {
    assoc::LocalSearchParams lp;
    lp.objective = cfg_.objective;
    lp.enforce_budget = cfg_.enforce_budget;
    lp.multi_rate = cfg_.multi_rate;
    lp.max_moves =
        std::max(100, cfg_.polish_moves_per_dirty * static_cast<int>(movers.size()));
    lp.restrict_users = std::move(movers);
    lp.min_gain = cfg_.polish_min_gain;
    out = assoc::local_search(sc, out, lp, nullptr, &repair_ws_).assoc;
  }
  return out;
}

AssociationController::ChangeCount AssociationController::count_changes(
    const std::vector<int>& old_slot_ap, const std::vector<int>& new_slot_ap,
    const NetworkState& next) const {
  ChangeCount c;
  const size_t n = std::max(old_slot_ap.size(), new_slot_ap.size());
  for (size_t i = 0; i < n; ++i) {
    const int o = i < old_slot_ap.size() ? old_slot_ap[i] : wlan::kNoAp;
    const int w = i < new_slot_ap.size() ? new_slot_ap[i] : wlan::kNoAp;
    if (o == w) continue;
    ++c.total;
    if (o == wlan::kNoAp) continue;  // pure join: neither forced nor voluntary
    if (w != wlan::kNoAp) ++c.handoffs;
    const bool still_valid = static_cast<int>(i) < next.n_slots() &&
                             next.slot(static_cast<int>(i)).wants_service() &&
                             next.link_rate(o, static_cast<int>(i)) > 0.0;
    if (still_valid) {
      ++c.voluntary;
    } else {
      ++c.forced;
    }
  }
  return c;
}

EpochReport AssociationController::drain() {
  const auto t0 = std::chrono::steady_clock::now();
  auto events = queue_.drain(cfg_.max_batch);
  if (cfg_.batch_hook) cfg_.batch_hook(epoch_index_, events);

  EpochReport rep;
  rep.epoch = epoch_index_;
  rep.events = static_cast<int>(events.size());
  tele_.drains.inc();
  tele_.events_ingested.inc(events.size());

  // --- 1. apply the batch to a scratch state (the epoch snapshot is simply
  // the committed state_/slot_ap_, restored by not committing). -------------
  NetworkState next = state_;
  std::map<int, int> slot_events;
  std::map<int, int> session_events;
  for (const auto& e : events) {
    tele_.events_by_type[static_cast<size_t>(e.type)].inc();
    if (e.type == EventType::kUserJoin) {
      const bool valid = e.user >= 0 && e.user <= next.n_slots() && e.session >= 0 &&
                         e.session < next.n_sessions() &&
                         std::isfinite(e.pos.x) && std::isfinite(e.pos.y) &&
                         (e.user == next.n_slots() || !next.slot(e.user).present);
      if (!valid) {
        tele_.events_invalid.inc();
        ++rep.events_invalid;
        continue;
      }
      const bool ok = admit({e.user, e.pos, e.session});
      next.apply(e);
      if (ok) {
        tele_.joins_admitted.inc();
      } else {
        next.apply(Event::unsubscribe(e.user));
        tele_.joins_rejected.inc();
        ++rep.rejected_joins;
      }
      tele_.events_applied.inc();
      ++rep.events_applied;
      ++slot_events[e.user];
      continue;
    }
    try {
      next.apply(e);
      tele_.events_applied.inc();
      ++rep.events_applied;
      if (e.type == EventType::kRateChange) {
        ++session_events[e.session];
      } else {
        ++slot_events[e.user];
      }
    } catch (const std::invalid_argument&) {
      tele_.events_invalid.inc();
      ++rep.events_invalid;
    }
  }

  // --- 2. coalescing accounting: every event on a slot/session whose net
  // state is unchanged across the drain cancelled out. ----------------------
  for (const auto& [slot, cnt] : slot_events) {
    const UserSlot before = slot < state_.n_slots() ? state_.slot(slot) : UserSlot{};
    const UserSlot& after = next.slot(slot);
    // Net no-op from the optimizer's perspective: an identical record, or a
    // user invisible (not wanting service) on both sides — e.g. a join and a
    // leave of the same user landing in one batch.
    if (before == after || (!before.wants_service() && !after.wants_service())) {
      tele_.events_coalesced.inc(static_cast<uint64_t>(cnt));
      rep.events_coalesced += cnt;
    }
  }
  for (const auto& [s, cnt] : session_events) {
    if (s < state_.n_sessions() && state_.session_rate(s) == next.session_rate(s)) {
      tele_.events_coalesced.inc(static_cast<uint64_t>(cnt));
      rep.events_coalesced += cnt;
    }
  }

  // --- 3. dirty region + compact projection. -------------------------------
  // Mark the APs the batch touched; eager mode re-projects their candidate
  // sets now, lazy mode defers the rebuild until a full solve needs the
  // engine (most serve epochs never do).
  mark_engine_dirty(next);
  if (!cfg_.lazy_engine_refresh) flush_engine(next);
  const auto dirty_slots = compute_dirty_slots(state_, next, slot_ap_);
  rep.dirty_users = static_cast<int>(dirty_slots.size());
  tele_.dirty_region_size.record(static_cast<double>(dirty_slots.size()));

  std::vector<int> row_slot;
  auto sc = next.to_scenario(&row_slot);

  std::vector<char> dirty_mask(static_cast<size_t>(next.n_slots()), 0);
  for (const int s : dirty_slots) dirty_mask[static_cast<size_t>(s)] = 1;

  // Sticky carry: everyone whose old AP is still valid keeps it — including
  // dirty users, whose placement is *reconsidered* (by the restricted polish)
  // rather than discarded. Re-placing the dirty region from scratch would
  // re-associate users whose small move changed nothing, defeating the
  // signaling advantage the controller exists for.
  const int n_rows = sc.n_users();
  auto carried = wlan::Association::none(n_rows);
  std::vector<int> dirty_rows;
  for (int r = 0; r < n_rows; ++r) {
    const int slot = row_slot[static_cast<size_t>(r)];
    const int old = static_cast<size_t>(slot) < slot_ap_.size()
                        ? slot_ap_[static_cast<size_t>(slot)]
                        : wlan::kNoAp;
    const bool valid = old != wlan::kNoAp && sc.in_range(old, r);
    if (valid) carried.user_ap[static_cast<size_t>(r)] = old;
    if (dirty_mask[static_cast<size_t>(slot)] || !valid) dirty_rows.push_back(r);
  }

  // --- 4. incremental repair. ----------------------------------------------
  auto cand = repair(sc, carried, dirty_rows, /*polish=*/true);
  tele_.incremental_repairs.inc();
  auto cand_slot = slot_association(cand, row_slot, next.n_slots());
  auto cc = count_changes(slot_ap_, cand_slot, next);

  // --- 5. bounded signaling: roll back to the minimal forced repair. -------
  if (cfg_.max_reassoc_per_epoch >= 0 && cc.voluntary > cfg_.max_reassoc_per_epoch) {
    rep.rolled_back = true;
    tele_.rollbacks.inc();
    std::vector<int> forced_rows;
    for (int r = 0; r < n_rows; ++r) {
      if (carried.ap_of(r) == wlan::kNoAp) forced_rows.push_back(r);
    }
    cand = repair(sc, carried, forced_rows, /*polish=*/false);
    cand_slot = slot_association(cand, row_slot, next.n_slots());
    cc = count_changes(slot_ap_, cand_slot, next);
  }

  auto cand_loads = wlan::compute_loads(sc, cand, cfg_.multi_rate);

  // --- 6. baseline refresh + degradation fallback. -------------------------
  ++epochs_since_refresh_;
  std::optional<assoc::Solution> full;
  if (cfg_.full_refresh_epochs > 0 && epochs_since_refresh_ >= cfg_.full_refresh_epochs &&
      sc.n_users() > 0) {
    flush_engine(next);
    full = solve_full(sc, row_slot);
    baseline_load_ = full->loads.total_load;
    epochs_since_refresh_ = 0;
    tele_.baseline_refreshes.inc();
  }

  const bool no_baseline = baseline_load_ <= 0.0 && cand_loads.total_load > 0.0;
  const bool degraded =
      baseline_load_ > 0.0 &&
      cand_loads.total_load > baseline_load_ * (1.0 + cfg_.degradation_threshold);
  if (sc.n_users() > 0 && (no_baseline || degraded) && !rep.rolled_back) {
    if (!full) {
      flush_engine(next);
      full = solve_full(sc, row_slot);
      baseline_load_ = full->loads.total_load;
      epochs_since_refresh_ = 0;
    }
    const double acceptable = baseline_load_ * (1.0 + cfg_.degradation_threshold);
    // Re-check against the *fresh* baseline: a stale baseline often reports
    // drift that a present-day full solve no longer confirms (the instance
    // itself got harder). Escalating then would pay handoffs for nothing.
    const bool still_degraded = cand_loads.total_load > acceptable;

    // Escalation ladder. Step 1: a *warm* global polish — every user movable,
    // no gain floor (this runs rarely; when it does we want the drift gone).
    // Warm-starting from the current association recovers the quality for a
    // fraction of the handoffs a cold solution adoption costs, because users
    // already well-placed never move; stopping halfway into the degradation
    // band (rather than at a local optimum) keeps the burst short without
    // re-triggering next epoch.
    assoc::LocalSearchParams lp;
    lp.objective = cfg_.objective;
    lp.enforce_budget = cfg_.enforce_budget;
    lp.multi_rate = cfg_.multi_rate;
    if (still_degraded) {
      lp.target_total = baseline_load_ * (1.0 + 0.5 * cfg_.degradation_threshold);
      auto warm = assoc::local_search(sc, cand, lp, nullptr, &repair_ws_);
      auto warm_slot = slot_association(warm.assoc, row_slot, next.n_slots());
      auto wc = count_changes(slot_ap_, warm_slot, next);
      const bool warm_within_cap = cfg_.max_reassoc_per_epoch < 0 ||
                                   wc.voluntary <= cfg_.max_reassoc_per_epoch;
      // Good enough = back inside the degradation band, or matching the cold
      // solution's quality (within 2%) — in the latter case adopting the cold
      // association instead would buy nothing but a network-wide shuffle.
      const bool warm_good =
          warm.loads.total_load <= acceptable ||
          warm.loads.total_load <= full->loads.total_load * 1.02;
      if (warm_within_cap && warm.loads.total_load < cand_loads.total_load &&
          warm_good) {
        cand = std::move(warm.assoc);
        cand_slot = std::move(warm_slot);
        cand_loads = std::move(warm.loads);
        cc = wc;
        tele_.warm_escalations.inc();
      } else {
        // Step 2: adopt the cold full solution outright.
        const auto full_slot = slot_association(full->assoc, row_slot, next.n_slots());
        const auto fc = count_changes(slot_ap_, full_slot, next);
        const bool within_cap = cfg_.max_reassoc_per_epoch < 0 ||
                                fc.voluntary <= cfg_.max_reassoc_per_epoch;
        if (within_cap && full->loads.total_load < cand_loads.total_load) {
          cand = full->assoc;
          cand_slot = full_slot;
          cand_loads = full->loads;
          cc = fc;
          rep.used_full_solve = true;
          tele_.full_solves.inc();
        } else {
          tele_.full_solve_rejections.inc();
        }
      }
    }
  }
  if (sc.n_users() == 0) baseline_load_ = 0.0;

  // --- 7. commit. ----------------------------------------------------------
  // Translate the epoch's deltas into kconn dirty marks first: the marking
  // needs the pre-commit state/projection (old heard-sets) alongside the
  // final candidate association.
  kconn_mark_dirty(next, cand_slot);
  state_ = std::move(next);
  slot_ap_ = std::move(cand_slot);
  compact_sc_ = std::move(sc);
  row_slot_ = std::move(row_slot);
  loads_ = std::move(cand_loads);
  ++epoch_index_;

  tele_.epochs.inc();
  tele_.reassociations.inc(static_cast<uint64_t>(cc.total));
  tele_.handoffs.inc(static_cast<uint64_t>(cc.handoffs));
  tele_.forced_reassociations.inc(static_cast<uint64_t>(cc.forced));
  tele_.reassoc_per_epoch.record(static_cast<double>(cc.total));

  int present = 0;
  for (int s = 0; s < state_.n_slots(); ++s) {
    if (state_.slot(s).present) ++present;
  }
  rep.reassociations = cc.total;
  rep.handoffs = cc.handoffs;
  rep.forced_reassociations = cc.forced;
  rep.voluntary_reassociations = cc.voluntary;
  rep.repair_shards = last_repair_stats_.shards;
  rep.repair_imbalance = last_repair_stats_.imbalance;
  rep.users_present = present;
  rep.users_subscribed = state_.n_active();
  rep.users_served = loads_.satisfied_users;
  rep.total_load = loads_.total_load;
  rep.max_load = loads_.max_load;
  rep.baseline_load = baseline_load_;
  refresh_multi(&rep);
  sync_engine_stats(&rep);
  rep.drain_seconds = seconds_since(t0);

  tele_.users_present.set(present);
  tele_.users_subscribed.set(rep.users_subscribed);
  tele_.users_served.set(rep.users_served);
  tele_.total_load.set(loads_.total_load);
  tele_.max_load.set(loads_.max_load);
  tele_.baseline_load.set(baseline_load_);
  tele_.degradation_pct.set(
      baseline_load_ > 0.0 ? (loads_.total_load / baseline_load_ - 1.0) * 100.0 : 0.0);
  tele_.queue_depth.set(static_cast<double>(queue_.size()));
  tele_.drain_seconds.record(rep.drain_seconds);
  return rep;
}

}  // namespace wmcast::ctrl
