#include "wmcast/ctrl/state.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <map>

#include "wmcast/util/assert.hpp"

namespace wmcast::ctrl {

NetworkState NetworkState::from_scenario(const wlan::Scenario& sc, wlan::RateTable table) {
  util::require(sc.has_geometry(),
                "NetworkState: needs a geometric scenario (positions drive moves)");
  NetworkState st;
  st.ap_pos_ = sc.ap_positions();
  st.table_ = std::move(table);
  st.ap_grid_ = wlan::GridIndex(st.ap_pos_, st.table_.range_m());
  st.budget_ = sc.load_budget();
  st.session_rate_.resize(static_cast<size_t>(sc.n_sessions()));
  for (int s = 0; s < sc.n_sessions(); ++s) {
    st.session_rate_[static_cast<size_t>(s)] = sc.session_rate(s);
  }
  st.slots_.resize(static_cast<size_t>(sc.n_users()));
  for (int u = 0; u < sc.n_users(); ++u) {
    auto& slot = st.slots_[static_cast<size_t>(u)];
    slot.pos = sc.user_positions()[static_cast<size_t>(u)];
    slot.session = sc.user_session(u);
    slot.present = true;
    slot.subscribed = true;
  }
  return st;
}

double NetworkState::link_rate(int a, int s) const {
  return table_.rate_for_distance(
      wlan::distance(ap_pos_[static_cast<size_t>(a)], slots_[static_cast<size_t>(s)].pos));
}

double NetworkState::area_side() const {
  double side = 0.0;
  for (const auto& p : ap_pos_) side = std::max({side, p.x, p.y});
  for (const auto& s : slots_) {
    if (s.present) side = std::max({side, s.pos.x, s.pos.y});
  }
  return side;
}

int NetworkState::n_active() const {
  int n = 0;
  for (const auto& s : slots_) {
    if (s.wants_service()) ++n;
  }
  return n;
}

void NetworkState::apply(const Event& e) {
  const auto valid_slot = [&](int u) { return u >= 0 && u < n_slots(); };
  const auto valid_session = [&](int s) { return s >= 0 && s < n_sessions(); };
  // A NaN position would poison every distance (and thus every link rate)
  // computed from it; an infinite one silently strands the user out of range
  // of all APs. Both come from corrupted traces, never from real producers.
  const auto valid_pos = [&](const wlan::Point& p) {
    return std::isfinite(p.x) && std::isfinite(p.y);
  };

  switch (e.type) {
    case EventType::kUserJoin: {
      util::require(e.user >= 0 && e.user <= n_slots(),
                    "apply(join): slot id gap or negative slot");
      util::require(valid_session(e.session), "apply(join): unknown session");
      util::require(valid_pos(e.pos), "apply(join): non-finite position");
      if (e.user == n_slots()) slots_.emplace_back();
      auto& slot = slots_[static_cast<size_t>(e.user)];
      util::require(!slot.present, "apply(join): user already present");
      slot.pos = e.pos;
      slot.session = e.session;
      slot.present = true;
      slot.subscribed = true;
      return;
    }
    case EventType::kUserLeave: {
      util::require(valid_slot(e.user), "apply(leave): unknown slot");
      auto& slot = slots_[static_cast<size_t>(e.user)];
      util::require(slot.present, "apply(leave): user not present");
      slot.present = false;
      slot.subscribed = false;
      return;
    }
    case EventType::kUserMove: {
      util::require(valid_slot(e.user), "apply(move): unknown slot");
      util::require(valid_pos(e.pos), "apply(move): non-finite position");
      auto& slot = slots_[static_cast<size_t>(e.user)];
      util::require(slot.present, "apply(move): user not present");
      slot.pos = e.pos;
      return;
    }
    case EventType::kRateChange: {
      util::require(valid_session(e.session), "apply(rate_change): unknown session");
      util::require(std::isfinite(e.rate_mbps) && e.rate_mbps > 0.0,
                    "apply(rate_change): rate must be positive and finite");
      session_rate_[static_cast<size_t>(e.session)] = e.rate_mbps;
      return;
    }
    case EventType::kSubscribe: {
      util::require(valid_slot(e.user), "apply(subscribe): unknown slot");
      util::require(valid_session(e.session), "apply(subscribe): unknown session");
      auto& slot = slots_[static_cast<size_t>(e.user)];
      util::require(slot.present, "apply(subscribe): user not present");
      slot.session = e.session;
      slot.subscribed = true;
      return;
    }
    case EventType::kUnsubscribe: {
      util::require(valid_slot(e.user), "apply(unsubscribe): unknown slot");
      auto& slot = slots_[static_cast<size_t>(e.user)];
      util::require(slot.present, "apply(unsubscribe): user not present");
      slot.subscribed = false;
      return;
    }
  }
  util::require(false, "apply: unknown event type");
}

wlan::Scenario NetworkState::to_scenario(std::vector<int>* row_slot) const {
  std::vector<wlan::Point> user_pos;
  std::vector<int> user_session;
  std::vector<int> rows;
  for (int s = 0; s < n_slots(); ++s) {
    const auto& slot = slots_[static_cast<size_t>(s)];
    if (!slot.wants_service()) continue;
    user_pos.push_back(slot.pos);
    user_session.push_back(slot.session);
    rows.push_back(s);
  }
  if (row_slot != nullptr) *row_slot = rows;
  return wlan::Scenario::from_geometry(ap_pos_, std::move(user_pos),
                                       std::move(user_session), session_rate_, table_,
                                       budget_);
}

std::vector<int> slot_association(const wlan::Association& compact,
                                  const std::vector<int>& row_slot, int n_slots) {
  util::require(static_cast<size_t>(compact.n_users()) == row_slot.size(),
                "slot_association: row map size mismatch");
  std::vector<int> out(static_cast<size_t>(n_slots), wlan::kNoAp);
  for (int r = 0; r < compact.n_users(); ++r) {
    const int slot = row_slot[static_cast<size_t>(r)];
    util::require(slot >= 0 && slot < n_slots, "slot_association: row maps out of range");
    out[static_cast<size_t>(slot)] = compact.ap_of(r);
  }
  return out;
}

wlan::Association compact_association(const std::vector<int>& slot_ap,
                                      const std::vector<int>& row_slot) {
  wlan::Association out = wlan::Association::none(static_cast<int>(row_slot.size()));
  for (size_t r = 0; r < row_slot.size(); ++r) {
    const size_t slot = static_cast<size_t>(row_slot[r]);
    if (slot < slot_ap.size()) out.user_ap[r] = slot_ap[slot];
  }
  return out;
}

std::vector<int> compute_dirty_slots(const NetworkState& before,
                                     const NetworkState& after,
                                     const std::vector<int>& slot_ap) {
  const int n_after = after.n_slots();
  const UserSlot absent{};

  // Sessions whose stream rate moved: every subscriber's load contribution
  // changes at whatever AP serves it.
  std::vector<char> session_changed(static_cast<size_t>(after.n_sessions()), 0);
  for (int s = 0; s < after.n_sessions(); ++s) {
    if (s >= before.n_sessions() || before.session_rate(s) != after.session_rate(s)) {
      session_changed[static_cast<size_t>(s)] = 1;
    }
  }

  // Slots whose own record changed across the drain — *as the optimizer sees
  // it*. 802.11 rate tables are step functions, so a short walk frequently
  // changes no link rate at all; such a move leaves the user's candidate-AP
  // set, its rates, and every group bottleneck exactly where they were, and
  // re-deciding it would only manufacture signaling.
  std::vector<char> changed(static_cast<size_t>(n_after), 0);
  for (int i = 0; i < n_after; ++i) {
    const UserSlot& b = i < before.n_slots() ? before.slot(i) : absent;
    const UserSlot& a = after.slot(i);
    if (b == a) continue;
    if (i < before.n_slots() && b.present == a.present &&
        b.subscribed == a.subscribed && b.session == a.session) {
      // Only APs within coverage range of the old or the new position can see
      // a rate change (everything else is 0 on both sides), so the grid
      // queries around both positions bound the check at O(k), not O(n_aps).
      bool rate_moved = false;
      const auto check = [&](int ap) {
        if (!rate_moved) rate_moved = before.link_rate(ap, i) != after.link_rate(ap, i);
      };
      after.for_each_ap_near(b.pos, check);
      after.for_each_ap_near(a.pos, check);
      if (!rate_moved) continue;  // pure move inside the same rate steps
    }
    changed[static_cast<size_t>(i)] = 1;
  }

  std::vector<char> dirty(static_cast<size_t>(n_after), 0);
  for (int i = 0; i < n_after; ++i) {
    const auto& a = after.slot(i);
    if (!a.wants_service()) continue;
    const int ap = static_cast<size_t>(i) < slot_ap.size() ? slot_ap[static_cast<size_t>(i)]
                                                           : wlan::kNoAp;
    if (changed[static_cast<size_t>(i)] || ap == wlan::kNoAp ||
        session_changed[static_cast<size_t>(a.session)]) {
      dirty[static_cast<size_t>(i)] = 1;
    }
  }

  // Bottleneck rule: group the pre-drain association by (AP, session); when a
  // directly-changed member leaves a group and the group's minimum member
  // rate moves, the survivors' transmission rate — hence their AP's load —
  // moves with it, so they must re-decide too.
  std::map<std::pair<int, int>, std::vector<int>> groups;
  const int n_tracked = std::min(before.n_slots(), static_cast<int>(slot_ap.size()));
  for (int i = 0; i < n_tracked; ++i) {
    const auto& b = before.slot(i);
    if (!b.wants_service()) continue;
    const int ap = slot_ap[static_cast<size_t>(i)];
    if (ap == wlan::kNoAp) continue;
    groups[{ap, b.session}].push_back(i);
  }
  for (const auto& [key, members] : groups) {
    const int ap = key.first;
    double old_min = std::numeric_limits<double>::infinity();
    double new_min = std::numeric_limits<double>::infinity();
    bool lost_member = false;
    for (const int i : members) {
      old_min = std::min(old_min, before.link_rate(ap, i));
      if (i < n_after && !changed[static_cast<size_t>(i)]) {
        new_min = std::min(new_min, after.link_rate(ap, i));
      } else {
        lost_member = true;
      }
    }
    if (!lost_member || new_min == old_min) continue;
    for (const int i : members) {
      if (i < n_after && !changed[static_cast<size_t>(i)] &&
          after.slot(i).wants_service()) {
        dirty[static_cast<size_t>(i)] = 1;
      }
    }
  }

  std::vector<int> out;
  for (int i = 0; i < n_after; ++i) {
    if (dirty[static_cast<size_t>(i)]) out.push_back(i);
  }
  return out;
}

}  // namespace wmcast::ctrl
