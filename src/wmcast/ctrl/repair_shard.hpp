// Sharded incremental repair (DESIGN.md §14): partitions one epoch's dirty
// region into AP-disjoint repair tasks and runs peel + greedy re-place +
// restricted polish on each task independently across a util::ThreadPool.
//
// Partition. Two APs interact during repair only when some user who may move
// hears both: a mover can be placed on any AP it hears, and an eviction from
// an over-budget AP turns that AP's members into movers. Union-find over the
// APs — uniting every mover's candidate set, and every over-budget AP with
// the candidate sets of all its members — therefore yields components whose
// repairs are independent: the peel and greedy phases of a component read and
// write only that component's AP loads and member lists. Each component with
// work (a mover or an over-budget AP) becomes one task; tasks are ordered by
// (grid cell of the lowest AP, lowest AP id), so when the partition
// degenerates into many tiny components, neighboring APs' tasks land in the
// same static chunk and walk cache-adjacent scenario rows.
//
// Determinism contract. The repaired association is a pure function of
// (scenario, carried association, movable rows, params) — bitwise identical
// at any thread count — because
//  * tasks touch disjoint APs and disjoint users (writes never overlap),
//  * each task's arithmetic runs against its own scoped wlan::LoadModel with
//    task-local totals (no cross-task floating-point state),
//  * the task list and every intra-task order (peel APs ascending, pending
//    sorted, movers in movable-row order with evictions appended in peel
//    order) is fixed before dispatch.
// The peel and greedy phases commit exactly what a single global pass would;
// the polish evaluates its accept/reject epsilons against the task-local
// running total instead of a network-wide one (a deliberate semantic choice —
// it is what makes the phase decomposable).
//
// Only the kTotalLoad objective is supported: the kMaxLoad key compares
// against the global maximum, which no AP-disjoint partition can evaluate
// locally. The controller keeps those objectives on the sequential path.
#pragma once

#include <vector>

#include "wmcast/util/thread_pool.hpp"
#include "wmcast/wlan/load_model.hpp"
#include "wmcast/wlan/scenario.hpp"

namespace wmcast::ctrl {

/// Knobs mirrored from ControllerConfig for one repair call.
struct RepairShardParams {
  bool enforce_budget = true;
  bool multi_rate = true;
  /// Run the restricted local-search polish after peel + greedy.
  bool polish = true;
  int polish_moves_per_dirty = 50;
  double polish_min_gain = 0.02;
};

/// Per-lane scratch, reused across epochs (capacity persists; the model is
/// re-scoped per task in O(1) via begin_scope()). One per pool lane.
struct RepairLaneWorkspace {
  wlan::LoadModel model;
  std::vector<int> pending;  // users awaiting greedy placement
  std::vector<int> movers;   // task movers incl. evictions from the peel
};

/// Per-call accounting, surfaced as counters.engine.parallel.repair_*
/// telemetry. All fields are thread-invariant (the task list is fixed before
/// dispatch).
struct RepairShardStats {
  int shards = 0;          // repair tasks dispatched
  int movers = 0;          // dirty users across all tasks
  double imbalance = 0.0;  // max task movers / mean task movers (1 = balanced)
};

/// Repairs `user_ap` / `members` in place. On entry they must be consistent
/// with the carried association (members[a] lists exactly the users with
/// user_ap[u] == a); on return they reflect the repaired one. `movable_rows`
/// are the dirty users whose placement may change; users evicted by the
/// budget peel join them. `lanes` is grown to pool.size() as needed.
void repair_sharded(const wlan::Scenario& sc, std::vector<int>& user_ap,
                    std::vector<std::vector<int>>& members,
                    const std::vector<int>& movable_rows,
                    const RepairShardParams& params, util::ThreadPool& pool,
                    std::vector<RepairLaneWorkspace>& lanes,
                    RepairShardStats* stats = nullptr);

/// AP-connected component tasks over an arbitrary dirty-row set — the same
/// union-find partition repair_sharded builds internally, exposed for the
/// k-connectivity overlay repair (ctrl/controller.cpp), whose per-user
/// derivations read only the rows' heard APs. rows[t] lists each task's rows
/// in ascending order; order[] is the deterministic dispatch order (grid cell
/// of the component's lowest AP, then lowest AP id — a pure function of the
/// AP layout, so any consumer iterating tasks in this order is
/// thread-invariant). Rows with an empty heard-set are appended to
/// `isolated` instead of any task.
struct ComponentTasks {
  std::vector<std::vector<int>> rows;
  std::vector<int> order;
};
void build_component_tasks(const wlan::Scenario& sc,
                           const std::vector<int>& dirty_rows,
                           ComponentTasks& tasks, std::vector<int>& isolated);

}  // namespace wmcast::ctrl
