#include "wmcast/ctrl/events.hpp"

#include <algorithm>

#include "wmcast/util/assert.hpp"

namespace wmcast::ctrl {

const char* event_type_name(EventType t) {
  switch (t) {
    case EventType::kUserJoin: return "join";
    case EventType::kUserLeave: return "leave";
    case EventType::kUserMove: return "move";
    case EventType::kRateChange: return "rate_change";
    case EventType::kSubscribe: return "subscribe";
    case EventType::kUnsubscribe: return "unsubscribe";
  }
  return "unknown";
}

EventType event_type_from_name(const std::string& name) {
  for (const EventType t : {EventType::kUserJoin, EventType::kUserLeave,
                            EventType::kUserMove, EventType::kRateChange,
                            EventType::kSubscribe, EventType::kUnsubscribe}) {
    if (name == event_type_name(t)) return t;
  }
  util::require(false, "event_type_from_name: unknown event type '" + name + "'");
  return EventType::kUserJoin;  // unreachable
}

Event Event::join(int user, wlan::Point pos, int session) {
  Event e;
  e.type = EventType::kUserJoin;
  e.user = user;
  e.pos = pos;
  e.session = session;
  return e;
}

Event Event::leave(int user) {
  Event e;
  e.type = EventType::kUserLeave;
  e.user = user;
  return e;
}

Event Event::move(int user, wlan::Point pos) {
  Event e;
  e.type = EventType::kUserMove;
  e.user = user;
  e.pos = pos;
  return e;
}

Event Event::rate_change(int session, double rate_mbps) {
  Event e;
  e.type = EventType::kRateChange;
  e.session = session;
  e.rate_mbps = rate_mbps;
  return e;
}

Event Event::subscribe(int user, int session) {
  Event e;
  e.type = EventType::kSubscribe;
  e.user = user;
  e.session = session;
  return e;
}

Event Event::unsubscribe(int user) {
  Event e;
  e.type = EventType::kUnsubscribe;
  e.user = user;
  return e;
}

void EventQueue::push(Event e) {
  std::lock_guard<std::mutex> lock(mu_);
  q_.push_back(StampedEvent{e, 0.0});
  ++pushed_;
}

void EventQueue::push_all(const std::vector<Event>& events) {
  std::lock_guard<std::mutex> lock(mu_);
  for (const Event& e : events) q_.push_back(StampedEvent{e, 0.0});
  pushed_ += events.size();
}

void EventQueue::set_capacity(size_t cap) {
  std::lock_guard<std::mutex> lock(mu_);
  capacity_ = cap;
}

size_t EventQueue::capacity() const {
  std::lock_guard<std::mutex> lock(mu_);
  return capacity_;
}

bool EventQueue::try_push(Event e, double stamp) {
  std::lock_guard<std::mutex> lock(mu_);
  if (capacity_ > 0 && q_.size() >= capacity_) {
    ++rejected_;
    return false;
  }
  q_.push_back(StampedEvent{e, stamp});
  ++pushed_;
  return true;
}

bool EventQueue::push_shed_oldest(Event e, double stamp) {
  std::lock_guard<std::mutex> lock(mu_);
  bool shed = false;
  if (capacity_ > 0 && q_.size() >= capacity_) {
    q_.pop_front();
    ++shed_;
    shed = true;
  }
  q_.push_back(StampedEvent{e, stamp});
  ++pushed_;
  return shed;
}

std::vector<Event> EventQueue::drain(int max_batch) {
  std::lock_guard<std::mutex> lock(mu_);
  const size_t n = max_batch <= 0
                       ? q_.size()
                       : std::min(q_.size(), static_cast<size_t>(max_batch));
  std::vector<Event> out;
  out.reserve(n);
  for (size_t i = 0; i < n; ++i) out.push_back(q_[i].ev);
  q_.erase(q_.begin(), q_.begin() + static_cast<ptrdiff_t>(n));
  return out;
}

std::vector<StampedEvent> EventQueue::drain_stamped(int max_batch) {
  std::lock_guard<std::mutex> lock(mu_);
  const size_t n = max_batch <= 0
                       ? q_.size()
                       : std::min(q_.size(), static_cast<size_t>(max_batch));
  std::vector<StampedEvent> out(q_.begin(), q_.begin() + static_cast<ptrdiff_t>(n));
  q_.erase(q_.begin(), q_.begin() + static_cast<ptrdiff_t>(n));
  return out;
}

bool EventQueue::peek_stamp(size_t i, double* t_s) const {
  std::lock_guard<std::mutex> lock(mu_);
  if (i >= q_.size()) return false;
  *t_s = q_[i].t_s;
  return true;
}

size_t EventQueue::size() const {
  std::lock_guard<std::mutex> lock(mu_);
  return q_.size();
}

uint64_t EventQueue::total_pushed() const {
  std::lock_guard<std::mutex> lock(mu_);
  return pushed_;
}

uint64_t EventQueue::total_rejected() const {
  std::lock_guard<std::mutex> lock(mu_);
  return rejected_;
}

uint64_t EventQueue::total_shed() const {
  std::lock_guard<std::mutex> lock(mu_);
  return shed_;
}

}  // namespace wmcast::ctrl
