// Event model for the online association controller (paper §3.1: quasi-static
// users join, leave, move, and zap channels). Producers — the protocol
// simulator, trace replay, or an operator console — submit events; the
// controller drains them in batches and re-optimizes incrementally.
//
// Users are identified by dense *slot* ids; a UserJoin with slot ==
// n_slots() extends the slot space (NetworkState::apply). Slots persist
// across leaves so a returning user keeps its id and traces stay stable.
#pragma once

#include <cstdint>
#include <deque>
#include <mutex>
#include <string>
#include <vector>

#include "wmcast/wlan/geometry.hpp"

namespace wmcast::ctrl {

enum class EventType {
  kUserJoin,        // a user appears (position + session) and wants service
  kUserLeave,       // a user departs the network entirely
  kUserMove,        // a present user relocates
  kRateChange,      // a session's stream data rate changes
  kSubscribe,       // a present user (re)subscribes, possibly zapping sessions
  kUnsubscribe,     // a present user stops watching but stays in the network
};

/// Stable lowercase names used by trace files and telemetry keys.
const char* event_type_name(EventType t);
/// Inverse of event_type_name; throws std::invalid_argument for unknown names.
EventType event_type_from_name(const std::string& name);

struct Event {
  EventType type = EventType::kUserJoin;
  int user = -1;            // join/leave/move/subscribe/unsubscribe
  int session = -1;         // join/subscribe/rate_change
  wlan::Point pos{};        // join/move
  double rate_mbps = 0.0;   // rate_change

  static Event join(int user, wlan::Point pos, int session);
  static Event leave(int user);
  static Event move(int user, wlan::Point pos);
  static Event rate_change(int session, double rate_mbps);
  static Event subscribe(int user, int session);
  static Event unsubscribe(int user);

  friend bool operator==(const Event&, const Event&) = default;
};

/// Ingestion queue: producers push, the controller drains batches. Guarded by
/// a mutex so protocol agents or an RPC frontend can submit from other
/// threads while the controller drains (the CI sanitizer config exercises
/// this path).
class EventQueue {
 public:
  void push(Event e);
  void push_all(const std::vector<Event>& events);

  /// Removes and returns up to `max_batch` events in FIFO order
  /// (max_batch <= 0 drains everything pending).
  std::vector<Event> drain(int max_batch = 0);

  size_t size() const;
  bool empty() const { return size() == 0; }

  /// Total events ever pushed (monotonic, survives drains).
  uint64_t total_pushed() const;

 private:
  mutable std::mutex mu_;
  std::deque<Event> q_;
  uint64_t pushed_ = 0;
};

}  // namespace wmcast::ctrl
