// Event model for the online association controller (paper §3.1: quasi-static
// users join, leave, move, and zap channels). Producers — the protocol
// simulator, trace replay, or an operator console — submit events; the
// controller drains them in batches and re-optimizes incrementally.
//
// Users are identified by dense *slot* ids; a UserJoin with slot ==
// n_slots() extends the slot space (NetworkState::apply). Slots persist
// across leaves so a returning user keeps its id and traces stay stable.
#pragma once

#include <cstdint>
#include <deque>
#include <mutex>
#include <string>
#include <vector>

#include "wmcast/wlan/geometry.hpp"

namespace wmcast::ctrl {

enum class EventType {
  kUserJoin,        // a user appears (position + session) and wants service
  kUserLeave,       // a user departs the network entirely
  kUserMove,        // a present user relocates
  kRateChange,      // a session's stream data rate changes
  kSubscribe,       // a present user (re)subscribes, possibly zapping sessions
  kUnsubscribe,     // a present user stops watching but stays in the network
};

/// Stable lowercase names used by trace files and telemetry keys.
const char* event_type_name(EventType t);
/// Inverse of event_type_name; throws std::invalid_argument for unknown names.
EventType event_type_from_name(const std::string& name);

struct Event {
  EventType type = EventType::kUserJoin;
  int user = -1;            // join/leave/move/subscribe/unsubscribe
  int session = -1;         // join/subscribe/rate_change
  wlan::Point pos{};        // join/move
  double rate_mbps = 0.0;   // rate_change

  static Event join(int user, wlan::Point pos, int session);
  static Event leave(int user);
  static Event move(int user, wlan::Point pos);
  static Event rate_change(int session, double rate_mbps);
  static Event subscribe(int user, int session);
  static Event unsubscribe(int user);

  friend bool operator==(const Event&, const Event&) = default;
};

/// An event plus its ingest stamp (the serve loop's virtual arrival time in
/// seconds); events entering through the plain push() APIs carry stamp 0.
struct StampedEvent {
  Event ev;
  double t_s = 0.0;
};

/// Ingestion queue: producers push, the controller drains batches. Guarded by
/// a mutex so protocol agents or an RPC frontend can submit from other
/// threads while the controller drains (the CI sanitizer config exercises
/// this path).
///
/// Optionally bounded: set_capacity() caps the undrained backlog, and the
/// bounded entry points (try_push / push_shed_oldest) surface overflow as
/// reject/shed outcomes with monotonic counters instead of blocking — the
/// serve loop's backpressure hooks. The plain push() APIs always accept so
/// existing controller paths are unaffected.
class EventQueue {
 public:
  void push(Event e);
  void push_all(const std::vector<Event>& events);

  /// Caps queued (undrained) events; 0 = unbounded (the default). Shrinking
  /// the capacity below the current backlog does not drop anything already
  /// queued — the bound applies to subsequent bounded pushes.
  void set_capacity(size_t cap);
  size_t capacity() const;

  /// Bounded push (reject-newest policy): refuses the event and returns
  /// false when the queue is at capacity, counting it in total_rejected().
  bool try_push(Event e, double stamp = 0.0);

  /// Bounded push (shed-oldest policy): always enqueues, evicting the oldest
  /// queued event first when at capacity. Returns true when something was
  /// shed (counted in total_shed()).
  bool push_shed_oldest(Event e, double stamp = 0.0);

  /// Removes and returns up to `max_batch` events in FIFO order
  /// (max_batch <= 0 drains everything pending).
  std::vector<Event> drain(int max_batch = 0);

  /// drain() variant preserving ingest stamps, for latency accounting.
  std::vector<StampedEvent> drain_stamped(int max_batch = 0);

  /// Stamp of the i-th queued event (0 = oldest) without removing it; false
  /// when fewer than i+1 events are queued. The serve loop peeks these to
  /// decide when a batch is due (staleness deadline / batch-full trigger).
  bool peek_stamp(size_t i, double* t_s) const;

  size_t size() const;
  bool empty() const { return size() == 0; }

  /// Total events ever pushed (monotonic, survives drains; excludes rejects).
  uint64_t total_pushed() const;
  /// Events refused by try_push against a full queue.
  uint64_t total_rejected() const;
  /// Events evicted by push_shed_oldest to admit newer arrivals.
  uint64_t total_shed() const;

 private:
  mutable std::mutex mu_;
  std::deque<StampedEvent> q_;
  size_t capacity_ = 0;
  uint64_t pushed_ = 0;
  uint64_t rejected_ = 0;
  uint64_t shed_ = 0;
};

}  // namespace wmcast::ctrl
