// Source adapter exposing a NetworkState to the coverage engine in *slot*
// space: elements are controller slots (ids stable across epochs, unlike the
// compact scenario's rows), groups are APs. Slots not wanting service are
// inactive, so they appear in no candidate set but keep their element id for
// when they return. This is what lets the controller keep one engine alive
// across epochs and rebuild only the candidate sets of dirty APs.
#pragma once

#include "wmcast/core/engine.hpp"
#include "wmcast/ctrl/state.hpp"

namespace wmcast::ctrl {

class StateSource {
 public:
  explicit StateSource(const NetworkState& st) : st_(&st) {}

  int n_elements() const { return st_->n_slots(); }
  int n_groups() const { return st_->n_aps(); }
  int n_sessions() const { return st_->n_sessions(); }
  double session_rate(int s) const { return st_->session_rate(s); }
  int element_session(int e) const { return st_->slot(e).session; }
  bool element_active(int e) const { return st_->slot(e).wants_service(); }
  double link_rate(int g, int e) const { return st_->link_rate(g, e); }
  double basic_rate() const { return st_->rate_table().basic_rate(); }

  /// NetworkState keeps no per-AP member list, so every slot is offered; the
  /// engine filters by link_rate > 0.
  template <typename Fn>
  void for_each_element_of_group(int /*g*/, Fn&& fn) const {
    for (int s = 0; s < st_->n_slots(); ++s) fn(s);
  }

 private:
  const NetworkState* st_;
};

}  // namespace wmcast::ctrl
