#include "wmcast/ctrl/telemetry.hpp"

#include <algorithm>
#include <cstdio>
#include <iterator>
#include <limits>

#include "wmcast/ctrl/events.hpp"
#include "wmcast/util/assert.hpp"
#include "wmcast/util/histogram.hpp"
#include "wmcast/util/stats.hpp"

namespace wmcast::ctrl {

// BucketHistogram is util::Histogram (util/histogram.cpp) since the serve
// subsystem began sharing the instrument; only the Telemetry struct lives here.

namespace {

constexpr EventType kAllEventTypes[] = {
    EventType::kUserJoin, EventType::kUserLeave,  EventType::kUserMove,
    EventType::kRateChange, EventType::kSubscribe, EventType::kUnsubscribe,
};

}  // namespace

Telemetry::Telemetry()
    : events_by_type(std::size(kAllEventTypes)),
      // Dirty regions: 1 .. ~4k users per drain.
      dirty_region_size(BucketHistogram::exponential(1.0, 2.0, 13)),
      // Re-associations committed per epoch, same scale.
      reassoc_per_epoch(BucketHistogram::exponential(1.0, 2.0, 13)),
      // Drain wall time: 1 µs .. ~16 s.
      drain_seconds(BucketHistogram::exponential(1e-6, 4.0, 13)) {}

util::Json Telemetry::to_json() const {
  util::Json counters = util::Json::object();
  counters.set("events_ingested", static_cast<int64_t>(events_ingested.value()));
  counters.set("events_applied", static_cast<int64_t>(events_applied.value()));
  counters.set("events_coalesced", static_cast<int64_t>(events_coalesced.value()));
  counters.set("events_invalid", static_cast<int64_t>(events_invalid.value()));
  util::Json by_type = util::Json::object();
  for (const EventType t : kAllEventTypes) {
    by_type.set(event_type_name(t),
                static_cast<int64_t>(events_by_type[static_cast<size_t>(t)].value()));
  }
  counters.set("events_by_type", std::move(by_type));
  counters.set("drains", static_cast<int64_t>(drains.value()));
  counters.set("epochs", static_cast<int64_t>(epochs.value()));
  counters.set("incremental_repairs", static_cast<int64_t>(incremental_repairs.value()));
  counters.set("warm_escalations", static_cast<int64_t>(warm_escalations.value()));
  counters.set("full_solves", static_cast<int64_t>(full_solves.value()));
  counters.set("baseline_refreshes", static_cast<int64_t>(baseline_refreshes.value()));
  counters.set("rollbacks", static_cast<int64_t>(rollbacks.value()));
  counters.set("full_solve_rejections",
               static_cast<int64_t>(full_solve_rejections.value()));
  counters.set("joins_admitted", static_cast<int64_t>(joins_admitted.value()));
  counters.set("joins_rejected", static_cast<int64_t>(joins_rejected.value()));
  counters.set("reassociations", static_cast<int64_t>(reassociations.value()));
  counters.set("handoffs", static_cast<int64_t>(handoffs.value()));
  counters.set("forced_reassociations",
               static_cast<int64_t>(forced_reassociations.value()));
  util::Json engine = util::Json::object();
  engine.set("full_builds", static_cast<int64_t>(engine_full_builds.value()));
  engine.set("incremental_updates",
             static_cast<int64_t>(engine_incremental_updates.value()));
  engine.set("groups_rebuilt", static_cast<int64_t>(engine_groups_rebuilt.value()));
  engine.set("sets_rebuilt", static_cast<int64_t>(engine_sets_rebuilt.value()));
  engine.set("sets_retired", static_cast<int64_t>(engine_sets_retired.value()));
  engine.set("compactions", static_cast<int64_t>(engine_compactions.value()));
  util::Json parallel = util::Json::object();
  parallel.set("solves", static_cast<int64_t>(engine_parallel_solves.value()));
  parallel.set("tasks", static_cast<int64_t>(engine_parallel_tasks.value()));
  parallel.set("workers", engine_parallel_workers.value());
  parallel.set("imbalance", engine_parallel_imbalance.value());
  parallel.set("arena_peak_bytes", engine_parallel_arena_peak_bytes.value());
  parallel.set("arena_reserved_bytes",
               engine_parallel_arena_reserved_bytes.value());
  parallel.set("repair_calls",
               static_cast<int64_t>(engine_parallel_repair_calls.value()));
  parallel.set("repair_shards",
               static_cast<int64_t>(engine_parallel_repair_shards.value()));
  parallel.set("repair_imbalance", engine_parallel_repair_imbalance.value());
  engine.set("parallel", std::move(parallel));
  util::Json kconn = util::Json::object();
  kconn.set("repairs", static_cast<int64_t>(engine_kconn_repairs.value()));
  kconn.set("repaired_users",
            static_cast<int64_t>(engine_kconn_repaired_users.value()));
  kconn.set("carried_users",
            static_cast<int64_t>(engine_kconn_carried_users.value()));
  kconn.set("engine_rebuilds", static_cast<int64_t>(engine_kconn_rebuilds.value()));
  engine.set("kconn", std::move(kconn));
  counters.set("engine", std::move(engine));

  util::Json gauges = util::Json::object();
  gauges.set("users_present", users_present.value());
  gauges.set("users_subscribed", users_subscribed.value());
  gauges.set("users_served", users_served.value());
  gauges.set("total_load", total_load.value());
  gauges.set("max_load", max_load.value());
  gauges.set("baseline_load", baseline_load.value());
  gauges.set("degradation_pct", degradation_pct.value());
  gauges.set("queue_depth", queue_depth.value());

  util::Json histograms = util::Json::object();
  histograms.set("dirty_region_size", dirty_region_size.to_json());
  histograms.set("reassoc_per_epoch", reassoc_per_epoch.to_json());
  histograms.set("drain_seconds", drain_seconds.to_json());

  util::Json j = util::Json::object();
  j.set("schema", kTelemetrySchema);
  j.set("counters", std::move(counters));
  j.set("gauges", std::move(gauges));
  j.set("histograms", std::move(histograms));
  return j;
}

std::string Telemetry::to_text() const {
  std::string out;
  char buf[160];
  const auto line = [&](const char* k, uint64_t v) {
    std::snprintf(buf, sizeof(buf), "  %-24s %llu\n", k,
                  static_cast<unsigned long long>(v));
    out += buf;
  };
  out += "counters:\n";
  line("events_ingested", events_ingested.value());
  line("events_applied", events_applied.value());
  line("events_coalesced", events_coalesced.value());
  line("events_invalid", events_invalid.value());
  line("drains", drains.value());
  line("epochs", epochs.value());
  line("incremental_repairs", incremental_repairs.value());
  line("warm_escalations", warm_escalations.value());
  line("full_solves", full_solves.value());
  line("baseline_refreshes", baseline_refreshes.value());
  line("rollbacks", rollbacks.value());
  line("full_solve_rejections", full_solve_rejections.value());
  line("joins_admitted", joins_admitted.value());
  line("joins_rejected", joins_rejected.value());
  line("reassociations", reassociations.value());
  line("handoffs", handoffs.value());
  line("forced_reassociations", forced_reassociations.value());
  line("engine_full_builds", engine_full_builds.value());
  line("engine_incremental_updates", engine_incremental_updates.value());
  line("engine_groups_rebuilt", engine_groups_rebuilt.value());
  line("engine_sets_rebuilt", engine_sets_rebuilt.value());
  line("engine_sets_retired", engine_sets_retired.value());
  line("engine_compactions", engine_compactions.value());
  line("engine_parallel_solves", engine_parallel_solves.value());
  line("engine_parallel_tasks", engine_parallel_tasks.value());
  line("engine_parallel_repair_calls", engine_parallel_repair_calls.value());
  line("engine_parallel_repair_shards", engine_parallel_repair_shards.value());
  line("engine_kconn_repairs", engine_kconn_repairs.value());
  line("engine_kconn_repaired_users", engine_kconn_repaired_users.value());
  line("engine_kconn_carried_users", engine_kconn_carried_users.value());
  line("engine_kconn_rebuilds", engine_kconn_rebuilds.value());
  out += "gauges:\n";
  const auto gline = [&](const char* k, double v) {
    std::snprintf(buf, sizeof(buf), "  %-24s %s\n", k, util::fmt(v, 4).c_str());
    out += buf;
  };
  gline("users_present", users_present.value());
  gline("users_subscribed", users_subscribed.value());
  gline("users_served", users_served.value());
  gline("total_load", total_load.value());
  gline("max_load", max_load.value());
  gline("baseline_load", baseline_load.value());
  gline("degradation_pct", degradation_pct.value());
  gline("queue_depth", queue_depth.value());
  gline("engine_parallel_workers", engine_parallel_workers.value());
  gline("engine_parallel_imbalance", engine_parallel_imbalance.value());
  gline("engine_parallel_repair_imbalance",
        engine_parallel_repair_imbalance.value());
  gline("engine_parallel_arena_peak_bytes",
        engine_parallel_arena_peak_bytes.value());
  gline("engine_parallel_arena_reserved_bytes",
        engine_parallel_arena_reserved_bytes.value());
  out += "dirty_region_size:\n" + dirty_region_size.render();
  out += "reassoc_per_epoch:\n" + reassoc_per_epoch.render();
  out += "drain_seconds:\n" + drain_seconds.render();
  return out;
}

}  // namespace wmcast::ctrl
