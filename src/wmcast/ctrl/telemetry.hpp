// Built-in telemetry for the association controller: monotonic counters,
// gauges, and bucketed histograms (log-scaled latency / size distributions),
// dumped as JSON under the documented `wmcast-ctrl-telemetry/v1` schema (see
// DESIGN.md §Controller) or rendered as text via util/histogram.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "wmcast/util/histogram.hpp"
#include "wmcast/util/json.hpp"

namespace wmcast::ctrl {

inline constexpr const char* kTelemetrySchema = "wmcast-ctrl-telemetry/v1";

/// Monotonically increasing event count.
class Counter {
 public:
  void inc(uint64_t n = 1) { v_ += n; }
  uint64_t value() const { return v_; }

 private:
  uint64_t v_ = 0;
};

/// Last-write-wins instantaneous value.
class Gauge {
 public:
  void set(double v) { v_ = v; }
  double value() const { return v_; }

 private:
  double v_ = 0.0;
};

/// The bucketed histogram now lives in util (shared with the serve
/// subsystem's latency instruments); the alias keeps the established
/// controller-facing name.
using BucketHistogram = util::Histogram;

/// The controller's fixed instrument set. Field names match the JSON keys.
struct Telemetry {
  Telemetry();

  // Counters.
  Counter events_ingested;        // drained from the queue
  Counter events_applied;         // accepted state mutations
  Counter events_coalesced;       // folded away within a drain (net no-ops)
  Counter events_invalid;         // rejected as malformed
  std::vector<Counter> events_by_type;  // indexed by EventType
  Counter drains;
  Counter epochs;
  Counter incremental_repairs;
  Counter warm_escalations;       // degradation fixed by a global warm polish
  Counter full_solves;            // full re-solves adopted
  Counter baseline_refreshes;     // full solves run only to refresh the baseline
  Counter rollbacks;              // epochs rolled back to the minimal repair
  Counter full_solve_rejections;  // full solutions rejected by the signaling cap
  Counter joins_admitted;
  Counter joins_rejected;         // refused by the admission hook
  Counter reassociations;         // slot AP changes committed (incl. joins/drops)
  Counter handoffs;               // AP -> different-AP moves (Reassociation frames)
  Counter forced_reassociations;  // subset forced by invalidated associations

  // Coverage-engine maintenance (rebuild-vs-repair accounting, mirrored from
  // core::EngineStats by the controller; additive keys under the v1 schema).
  Counter engine_full_builds;          // whole-system projections
  Counter engine_incremental_updates;  // dirty-group update passes
  Counter engine_groups_rebuilt;       // AP candidate-set rebuilds
  Counter engine_sets_rebuilt;         // sets re-appended by those rebuilds
  Counter engine_sets_retired;         // sets tombstoned by those rebuilds
  Counter engine_compactions;          // arena reclamation passes

  // Sharded parallel solve accounting (core/parallel.hpp; additive keys under
  // counters.engine.parallel). Zero unless the controller runs with threads > 1.
  Counter engine_parallel_solves;      // sharded full solves executed
  Counter engine_parallel_tasks;       // shards dispatched across all of them

  // Sharded incremental-repair accounting (ctrl/repair_shard.hpp; additive
  // keys under counters.engine.parallel). Unlike the solve counters these are
  // thread-invariant: the task partition is fixed before dispatch, so the
  // same workload reports the same numbers at any --threads.
  Counter engine_parallel_repair_calls;   // sharded repair invocations
  Counter engine_parallel_repair_shards;  // repair tasks dispatched across them

  // Persistent k-connectivity engine accounting (DESIGN.md §16; additive keys
  // under counters.engine.kconn). Thread-invariant: dirty regions are a pure
  // function of the applied state deltas, never of the pool schedule.
  Counter engine_kconn_repairs;         // dirty-region overlay repairs
  Counter engine_kconn_repaired_users;  // users re-derived across them
  Counter engine_kconn_carried_users;   // users carried untouched across them
  Counter engine_kconn_rebuilds;        // cold full re-derivations

  // Gauges (state as of the last committed epoch).
  Gauge users_present;
  Gauge users_subscribed;
  Gauge users_served;
  Gauge total_load;
  Gauge max_load;
  Gauge baseline_load;
  Gauge degradation_pct;          // (total_load / baseline_load - 1) * 100
  Gauge queue_depth;
  Gauge engine_parallel_workers;    // pool lanes used by the last sharded solve
  Gauge engine_parallel_imbalance;  // max/mean shard weight of that solve
  Gauge engine_parallel_repair_imbalance;  // max/mean dirty users per repair task
  Gauge engine_parallel_arena_peak_bytes;      // summed lane-arena high-water marks
  Gauge engine_parallel_arena_reserved_bytes;  // summed lane-arena block capacity

  // Histograms.
  BucketHistogram dirty_region_size;
  BucketHistogram reassoc_per_epoch;
  BucketHistogram drain_seconds;

  /// Serializes under the wmcast-ctrl-telemetry/v1 schema.
  util::Json to_json() const;
  /// Human-readable dump (counters table + rendered histograms).
  std::string to_text() const;
};

}  // namespace wmcast::ctrl
