// The chaos campaign driver (DESIGN.md §10): generate scenarios, perturb
// their churn traces with seeded fault injection, run every differential
// oracle, shrink whatever fails, and emit standalone repro files. The whole
// campaign is a pure function of its config — same (seed, profile, sizes)
// always visits the same scenarios, injects the same faults, and reports the
// same findings, regardless of host, thread count, or wall clock.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

#include "wmcast/chaos/fault.hpp"
#include "wmcast/chaos/shrink.hpp"
#include "wmcast/util/json.hpp"

namespace wmcast::chaos {

struct CampaignConfig {
  uint64_t seed = 1;
  int scenarios = 20;             // seeded fault scenarios to run
  std::string profile = "mixed";  // FaultProfile name, or "all" to cycle them
  int threads = 4;                // the N of the 1-vs-N differential replay
  std::string solver = "mla-c";   // controller full re-solve algorithm

  // Scenario scale. Small enough that one scenario replays in milliseconds;
  // the campaign gets its coverage from seed diversity, not instance size.
  int n_aps = 16;
  int n_users = 60;
  int n_sessions = 4;
  double area_side_m = 400.0;
  int trace_epochs = 10;

  bool shrink_failures = true;  // minimize failing traces before reporting
  std::string out_dir;          // write repro files here ("" = don't write)
};

/// One shrunk, reproducible failure.
struct CampaignFinding {
  int scenario_index = 0;
  uint64_t seed = 0;        // the per-scenario fault seed
  std::string profile;
  Repro repro;              // shrunk when shrink_failures, raw otherwise
  std::string repro_path;   // where it was written ("" when out_dir unset)
};

struct CampaignResult {
  int scenarios_run = 0;
  int checks_run = 0;       // individual oracle verdicts evaluated
  int checks_failed = 0;
  int parse_attempts = 0;   // corrupted-text parser probes (malformed profiles)
  int parse_rejected = 0;   // cleanly rejected with std::invalid_argument
  FaultLog faults;          // aggregate of everything the injectors did
  std::vector<CampaignFinding> findings;

  bool clean() const { return checks_failed == 0; }
};

/// Runs the campaign. `progress`, when non-null, gets one line per scenario
/// (index, profile, verdict) — the CLI passes std::cerr so long campaigns
/// show a heartbeat without polluting stdout's JSON.
CampaignResult run_campaign(const CampaignConfig& cfg,
                            std::ostream* progress = nullptr);

/// Summary (and per-finding details) as JSON for --json consumers.
util::Json campaign_to_json(const CampaignConfig& cfg, const CampaignResult& res);

}  // namespace wmcast::chaos
