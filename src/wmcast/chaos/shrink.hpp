// Greedy test-case shrinking for chaos failures (DESIGN.md §10). A failing
// (scenario, perturbed-trace, config) triple found by the campaign is usually
// hundreds of events deep; the shrinker minimizes the trace while the failure
// predicate keeps firing, then emits a standalone "wmcast-repro v1" file that
// embeds everything needed to replay the failure — no injector, no seed
// rederivation, just the concrete shrunk trace.
//
// Shrinking is delta-debugging lite, greedy to a fixpoint:
//   1. truncate trailing epochs after the last one the predicate needs;
//   2. empty whole epochs (indices are preserved so divergence epochs stay
//      meaningful);
//   3. remove event chunks per epoch, halving the chunk size down to single
//      events.
// Every accepted step re-runs the predicate, so the result is guaranteed to
// still fail; the step count is bounded and deterministic.
#pragma once

#include <functional>
#include <string>

#include "wmcast/chaos/oracles.hpp"
#include "wmcast/ctrl/controller.hpp"
#include "wmcast/ctrl/trace.hpp"
#include "wmcast/wlan/scenario.hpp"

namespace wmcast::chaos {

/// Returns true when the candidate trace still reproduces the failure.
using FailurePredicate = std::function<bool(const ctrl::EventTrace&)>;

struct ShrinkResult {
  ctrl::EventTrace trace;     // minimized, still failing
  size_t events_before = 0;
  size_t events_after = 0;
  int epochs_before = 0;
  int epochs_after = 0;
  int predicate_runs = 0;     // how many candidate replays the shrink cost
};

/// Greedily minimizes `trace` under `still_fails`. Precondition:
/// still_fails(trace) is true (throws std::invalid_argument otherwise — a
/// shrink request for a passing input is always a harness bug).
ShrinkResult shrink_trace(const ctrl::EventTrace& trace,
                          const FailurePredicate& still_fails);

/// A self-contained failure record: everything check_differential_replay
/// needs, plus provenance (which check failed, under which seed/profile).
struct Repro {
  std::string check;          // failing oracle check name
  std::string detail;         // its failure detail (informational)
  uint64_t seed = 0;          // campaign seed that produced the fault schedule
  std::string profile = "none";  // fault profile name (provenance only)
  std::string solver = "mla-c";  // controller full_solver
  int threads = 2;            // the N of the 1-vs-N differential replay
  wlan::Scenario scenario = wlan::Scenario::from_geometry(
      {{0, 0}}, {}, {}, {1.0}, wlan::RateTable::ieee80211a());
  ctrl::EventTrace trace;     // concrete (already perturbed + shrunk) trace
};

/// Serializes to the line-oriented "wmcast-repro v1" format: a metadata
/// header, then the embedded wlan scenario and ctrl trace blocks, each
/// preceded by its line count so the parser needs no lookahead.
std::string repro_to_text(const Repro& repro);

/// Parses repro_to_text output. Throws std::invalid_argument on malformed
/// input (repro files are untrusted: they round-trip through disk and may
/// themselves have been corrupted by a malformed-text campaign).
Repro repro_from_text(const std::string& text);

bool save_repro(const Repro& repro, const std::string& path);
Repro load_repro(const std::string& path);

/// Replays a repro through the differential oracles it was minimized
/// against: check_differential_replay on (scenario, trace, config(solver,
/// seed), threads). A fixed repro passes; a regression fails again.
ReplayCheckResult run_repro(const Repro& repro);

}  // namespace wmcast::chaos
