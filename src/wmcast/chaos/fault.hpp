// Deterministic fault injection for the online controller's input surfaces
// (DESIGN.md §10). A FaultInjector is a pure function of (seed, profile): it
// perturbs an event trace — message loss, duplication, bounded reordering,
// AP down/up flaps, user-churn bursts, clock skew — and corrupts serialized
// text for parser-robustness checks. Replaying the same (seed, profile) over
// the same input reproduces the exact same faults, which is what lets the
// differential replayer (chaos/oracles.hpp) compare two oracles on identical
// perturbed inputs and lets a failure shrink to a standalone repro file.
//
// Faults are intentionally *not* kept semantically valid: a flap or a churn
// burst may reference slots that never joined, and skewed events can arrive
// before the join they depend on. The controller's contract is to count such
// events invalid and keep serving — the injector tests that contract rather
// than working around it.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "wmcast/ctrl/state.hpp"
#include "wmcast/ctrl/trace.hpp"
#include "wmcast/util/rng.hpp"

namespace wmcast::chaos {

/// Per-input fault rates. All probabilities are per event (or per epoch/line
/// where noted); 0 everywhere = the identity injector.
struct FaultProfile {
  std::string name = "none";
  double drop_prob = 0.0;         // per event: message loss
  double duplicate_prob = 0.0;    // per event: delivered twice back to back
  double reorder_prob = 0.0;      // per epoch: shuffle within bounded windows
  int reorder_window = 4;         // max displacement of a reordered event
  double skew_prob = 0.0;         // per event: clock skew into the next epoch
  double flap_prob = 0.0;         // per epoch: one AP's users drop and rejoin
  int flap_leaves = 6;            // leave/rejoin pairs per flap
  double burst_prob = 0.0;        // per epoch: user-churn burst
  int burst_size = 8;             // join/leave events per burst
  double corrupt_prob = 0.0;      // per line of corrupt_text()

  /// Named profiles: none, light, heavy, reorder, malformed, mixed, storm
  /// (flash-crowd churn bursts + AP flaps for serve-loop stress).
  /// Throws std::invalid_argument for unknown names.
  static FaultProfile named(const std::string& name);
  static const std::vector<std::string>& names();
};

/// What the injector actually did (deterministic given seed + profile + input).
struct FaultLog {
  uint64_t events_dropped = 0;
  uint64_t events_duplicated = 0;
  uint64_t events_skewed = 0;
  uint64_t windows_reordered = 0;
  uint64_t ap_flaps = 0;
  uint64_t churn_bursts = 0;
  uint64_t lines_corrupted = 0;
};

class FaultInjector {
 public:
  FaultInjector(uint64_t seed, FaultProfile profile);

  /// Perturbs `trace` under the profile. `initial` supplies the geometry the
  /// synthetic flap/burst events reference (AP positions, session and slot id
  /// ranges); the injector tracks no evolving state, so synthetic events may
  /// be invalid by the time they land — deliberately (see header comment).
  ctrl::EventTrace perturb(const ctrl::EventTrace& trace,
                           const ctrl::NetworkState& initial);

  /// Corrupts serialized text line by line: truncation, bit flips inside the
  /// line, token deletion. At corrupt_prob = 0 returns the input unchanged.
  std::string corrupt_text(const std::string& text);

  const FaultProfile& profile() const { return profile_; }
  const FaultLog& log() const { return log_; }

 private:
  void flap(std::vector<ctrl::Event>& epoch, const ctrl::NetworkState& initial);
  void burst(std::vector<ctrl::Event>& epoch, const ctrl::NetworkState& initial);

  FaultProfile profile_;
  util::Rng rng_;
  FaultLog log_;
};

}  // namespace wmcast::chaos
