#include "wmcast/chaos/shrink.hpp"

#include <algorithm>
#include <fstream>
#include <sstream>
#include <stdexcept>

#include "wmcast/util/assert.hpp"
#include "wmcast/wlan/serialization.hpp"

namespace wmcast::chaos {
namespace {

// Every predicate run is a full differential replay; the cap bounds a shrink
// of a pathological trace to something a CI job can afford. Greedy shrinking
// converges far below this on realistic failures.
constexpr int kMaxPredicateRuns = 400;

std::string one_line(std::string s) {
  for (char& c : s) {
    if (c == '\n' || c == '\r') c = ' ';
  }
  return s;
}

std::vector<std::string> split_lines(const std::string& text) {
  std::vector<std::string> out;
  std::istringstream in(text);
  std::string line;
  while (std::getline(in, line)) out.push_back(line);
  return out;
}

}  // namespace

ShrinkResult shrink_trace(const ctrl::EventTrace& trace,
                          const FailurePredicate& still_fails) {
  util::require(static_cast<bool>(still_fails), "shrink_trace: null predicate");
  ShrinkResult out;
  out.events_before = trace.n_events();
  out.epochs_before = trace.n_epochs();

  int runs = 0;
  const auto fails = [&](const ctrl::EventTrace& t) {
    ++runs;
    return still_fails(t);
  };
  if (!fails(trace)) {
    throw std::invalid_argument(
        "shrink_trace: input does not fail the predicate (nothing to shrink)");
  }
  ctrl::EventTrace cur = trace;

  // 1. Truncate trailing epochs: everything after the failure is dead weight.
  while (!cur.epochs.empty() && runs < kMaxPredicateRuns) {
    ctrl::EventTrace cand = cur;
    cand.epochs.pop_back();
    if (!fails(cand)) break;
    cur = std::move(cand);
  }

  // 2+3. Greedy fixpoint: empty whole epochs (keeping indices stable), then
  // carve event chunks out of each epoch, halving the chunk until singles.
  bool changed = true;
  while (changed && runs < kMaxPredicateRuns) {
    changed = false;

    for (size_t ep = 0; ep < cur.epochs.size() && runs < kMaxPredicateRuns; ++ep) {
      if (cur.epochs[ep].empty()) continue;
      ctrl::EventTrace cand = cur;
      cand.epochs[ep].clear();
      if (fails(cand)) {
        cur = std::move(cand);
        changed = true;
      }
    }

    for (size_t ep = 0; ep < cur.epochs.size(); ++ep) {
      size_t chunk = std::max<size_t>(1, cur.epochs[ep].size() / 2);
      while (runs < kMaxPredicateRuns) {
        for (size_t i = 0; i + chunk <= cur.epochs[ep].size() &&
                           runs < kMaxPredicateRuns;) {
          ctrl::EventTrace cand = cur;
          auto& ev = cand.epochs[ep];
          ev.erase(ev.begin() + static_cast<ptrdiff_t>(i),
                   ev.begin() + static_cast<ptrdiff_t>(i + chunk));
          if (fails(cand)) {
            cur = std::move(cand);
            changed = true;  // same i: the next chunk slid into place
          } else {
            i += chunk;
          }
        }
        if (chunk == 1) break;
        chunk /= 2;
      }
    }
  }

  out.trace = std::move(cur);
  out.events_after = out.trace.n_events();
  out.epochs_after = out.trace.n_epochs();
  out.predicate_runs = runs;
  return out;
}

std::string repro_to_text(const Repro& repro) {
  std::ostringstream os;
  os << "wmcast-repro v1\n";
  os << "check " << one_line(repro.check) << '\n';
  os << "detail " << one_line(repro.detail) << '\n';
  os << "seed " << repro.seed << '\n';
  os << "profile " << one_line(repro.profile) << '\n';
  os << "solver " << one_line(repro.solver) << '\n';
  os << "threads " << repro.threads << '\n';
  const auto sc_lines = split_lines(wlan::to_text(repro.scenario));
  os << "scenario_lines " << sc_lines.size() << '\n';
  for (const auto& l : sc_lines) os << l << '\n';
  const auto tr_lines = split_lines(ctrl::trace_to_text(repro.trace));
  os << "trace_lines " << tr_lines.size() << '\n';
  for (const auto& l : tr_lines) os << l << '\n';
  os << "end\n";
  return os.str();
}

Repro repro_from_text(const std::string& text) {
  std::istringstream in(text);
  std::string line;
  const auto next_line = [&](const char* what) -> const std::string& {
    if (!std::getline(in, line)) {
      throw std::invalid_argument(std::string("repro: truncated before ") + what);
    }
    return line;
  };
  const auto expect_kv = [&](const std::string& key) -> std::string {
    const std::string& l = next_line(key.c_str());
    if (l == key) return {};
    if (l.size() > key.size() && l.compare(0, key.size(), key) == 0 &&
        l[key.size()] == ' ') {
      return l.substr(key.size() + 1);
    }
    throw std::invalid_argument("repro: expected '" + key + " ...', got '" + l + "'");
  };
  const auto parse_int = [](const std::string& v, const char* what) -> long long {
    try {
      size_t pos = 0;
      const long long n = std::stoll(v, &pos);
      if (pos != v.size()) throw std::invalid_argument("trailing characters");
      return n;
    } catch (const std::exception&) {
      throw std::invalid_argument(std::string("repro: bad ") + what + " '" + v + "'");
    }
  };
  const auto read_block = [&](size_t n, const char* what) -> std::string {
    std::string block;
    for (size_t i = 0; i < n; ++i) {
      block += next_line(what);
      block += '\n';
    }
    return block;
  };

  if (next_line("header") != "wmcast-repro v1") {
    throw std::invalid_argument("repro: missing 'wmcast-repro v1' header");
  }
  Repro r;
  r.check = expect_kv("check");
  r.detail = expect_kv("detail");
  {
    const std::string v = expect_kv("seed");
    try {
      size_t pos = 0;
      if (!v.empty() && (v[0] == '-' || v[0] == '+')) throw std::invalid_argument("sign");
      r.seed = std::stoull(v, &pos);
      if (pos != v.size()) throw std::invalid_argument("trailing characters");
    } catch (const std::exception&) {
      throw std::invalid_argument("repro: bad seed '" + v + "'");
    }
  }
  r.profile = expect_kv("profile");
  r.solver = expect_kv("solver");
  const long long threads = parse_int(expect_kv("threads"), "threads");
  if (threads < 1 || threads > 1024) throw std::invalid_argument("repro: bad thread count");
  r.threads = static_cast<int>(threads);

  const long long sc_n = parse_int(expect_kv("scenario_lines"), "scenario_lines");
  if (sc_n < 0) throw std::invalid_argument("repro: negative scenario_lines");
  r.scenario = wlan::from_text(read_block(static_cast<size_t>(sc_n), "scenario"));
  const long long tr_n = parse_int(expect_kv("trace_lines"), "trace_lines");
  if (tr_n < 0) throw std::invalid_argument("repro: negative trace_lines");
  r.trace = ctrl::trace_from_text(read_block(static_cast<size_t>(tr_n), "trace"));

  if (next_line("trailer") != "end") {
    throw std::invalid_argument("repro: missing 'end' trailer");
  }
  return r;
}

bool save_repro(const Repro& repro, const std::string& path) {
  std::ofstream out(path);
  if (!out) return false;
  out << repro_to_text(repro);
  return static_cast<bool>(out);
}

Repro load_repro(const std::string& path) {
  std::ifstream in(path);
  if (!in) throw std::invalid_argument("repro: cannot open '" + path + "'");
  std::ostringstream buf;
  buf << in.rdbuf();
  return repro_from_text(buf.str());
}

ReplayCheckResult run_repro(const Repro& repro) {
  ctrl::ControllerConfig cfg;
  cfg.full_solver = repro.solver;
  cfg.seed = repro.seed;
  // Mirror the campaign's controller config (chaos/campaign.cpp) so a repro
  // replays under exactly the conditions that produced it.
  cfg.full_refresh_epochs = 1;
  // Sharded-repair / pipelined-serve repros replay the threads=1-vs-N serve
  // differential; other serve.* checks replay the coalescing oracle.
  if (repro.check.rfind("serve.repair_parallel", 0) == 0) {
    ReplayCheckResult out;
    out.results =
        check_serve_repair_parallel(repro.scenario, repro.trace, cfg, repro.threads);
    out.epochs_run = repro.trace.n_epochs();
    return out;
  }
  if (repro.check.rfind("serve.", 0) == 0) {
    ReplayCheckResult out;
    out.results = check_serve_coalescing(repro.scenario, repro.trace, cfg);
    out.epochs_run = repro.trace.n_epochs();
    return out;
  }
  // k-connectivity repros replay every kconn oracle: the trace-free k=1
  // identity sweep on the embedded scenario, the k=2 parallel differentials,
  // and the incremental-engine-vs-cold differential over the embedded trace.
  if (repro.check.rfind("kconn.", 0) == 0) {
    ReplayCheckResult out;
    out.results = check_kconn_k1_identity(repro.scenario);
    const auto par =
        check_kconn_parallel(repro.scenario, repro.trace, cfg, repro.threads);
    out.results.insert(out.results.end(), par.begin(), par.end());
    const auto inc = check_kconn_incremental(repro.scenario, repro.trace, cfg,
                                             repro.threads);
    out.results.insert(out.results.end(), inc.begin(), inc.end());
    out.epochs_run = repro.trace.n_epochs();
    return out;
  }
  // Kernel-dispatch repros ("simd.*") re-run the SIMD-vs-scalar solver
  // differential on the embedded scenario; the trace is irrelevant to them.
  if (repro.check.rfind("simd.", 0) == 0) {
    ReplayCheckResult out;
    out.results = check_simd_vs_scalar(repro.scenario);
    return out;
  }
  return check_differential_replay(repro.scenario, repro.trace, cfg, repro.threads);
}

}  // namespace wmcast::chaos
