// Differential oracles (DESIGN.md §10): independent implementations of the
// same computation, run on identical (possibly fault-perturbed) inputs and
// required to agree. Disagreement is a bug in one of them by construction —
// no ground truth needed.
//
// Oracle pairs:
//  * engine-backed greedy/MCG/SCG (core/solve) vs the eager references
//    (setcover/reference) — exact chosen-sequence equivalence;
//  * sharded parallel solves (core/parallel) vs the joint solve — chosen-set
//    and covered equivalence;
//  * the controller at --threads=1 vs --threads=N over the same trace —
//    committed slot_ap equality after every epoch;
//  * the controller's incremental repair vs a cold full re-solve — bounded
//    degradation (repair may be worse, but only within the configured
//    threshold plus a slack term for baseline staleness between refreshes).
//
// Structural invariants checked on the controller after every epoch:
//  * association sanity — slot_ap sized to the slot space, every served
//    user's AP in radio range, no user served without wanting service;
//  * load-report consistency — the committed LoadReport equals a fresh
//    recomputation from the committed association;
//  * monotone epoch counters, and telemetry conservation: ingested =
//    applied + invalid, per-type counts sum to ingested, admitted +
//    rejected <= join events, handoffs <= reassociations.
#pragma once

#include <string>
#include <vector>

#include "wmcast/ctrl/controller.hpp"
#include "wmcast/ctrl/trace.hpp"
#include "wmcast/wlan/scenario.hpp"

namespace wmcast::chaos {

/// One oracle verdict. `pass == false` carries a human-readable detail that
/// names both sides of the disagreement.
struct OracleResult {
  std::string check;
  bool pass = true;
  std::string detail;
};

/// All failures in `results`, formatted one per line (empty when all passed).
std::string failures_to_text(const std::vector<OracleResult>& results);

/// Engine solvers vs eager references on one scenario snapshot: greedy, MCG
/// (per-AP budgets = the scenario load budget), SCG, and sharded-vs-joint
/// greedy. Pure and deterministic.
std::vector<OracleResult> check_solver_equivalence(const wlan::Scenario& sc);

/// SIMD-vs-scalar differential (DESIGN.md §13): the full engine solver stack
/// (greedy, MCG, SCG) run once with the kernel dispatch forced scalar and
/// once under the ambient mode (auto = widest supported, so AVX2 where the
/// CPU has it). Both paths compute exact integer popcounts, so every field —
/// chosen sequences, covered bitsets, costs, pass counts — must be
/// bit-identical; any difference is a kernel bug, never a tolerance. On a CPU
/// without AVX2 the two runs share a code path and the check passes trivially.
std::vector<OracleResult> check_simd_vs_scalar(const wlan::Scenario& sc);

/// Structural invariants on a controller after an epoch (see header comment).
/// `expected_epochs` is the number of drain() calls made so far.
std::vector<OracleResult> check_controller_invariants(
    const ctrl::AssociationController& c, int expected_epochs);

/// Telemetry counter conservation on a controller's cumulative telemetry.
std::vector<OracleResult> check_telemetry_conservation(
    const ctrl::AssociationController& c);

struct ReplayCheckResult {
  std::vector<OracleResult> results;
  int epochs_run = 0;
  bool diverged = false;
  int divergence_epoch = -1;
};

/// Replays `trace` through two controllers built from the same scenario and
/// config but threads=1 vs threads=n_threads, comparing the committed
/// slot_ap after every epoch and running the per-epoch invariant checks on
/// the 1-thread side. Also runs the incremental-vs-cold bounded-degradation
/// check on the final state.
ReplayCheckResult check_differential_replay(const wlan::Scenario& sc,
                                            const ctrl::EventTrace& trace,
                                            const ctrl::ControllerConfig& cfg,
                                            int n_threads);

/// Serve-loop differential: streams `trace` (epochs mapped onto a virtual
/// timeline) through two ServeLoop+controller stacks under a deterministic
/// service model, identical except coalescing on vs off. Bounded-staleness
/// coalescing only folds events whose effect is superseded within a batch,
/// so both sides must converge to the same final NetworkState even on
/// fault-perturbed traces; the oracle also enforces the serve-telemetry
/// conservation laws (offered = accepted + rejected; accepted = submitted +
/// coalesced + shed after the final flush) and the controller's structural
/// invariants on the coalescing side. The ingress queue is unbounded here so
/// both sides accept the identical stream — backpressure is exercised by the
/// serve tests, not this oracle.
std::vector<OracleResult> check_serve_coalescing(const wlan::Scenario& sc,
                                                 const ctrl::EventTrace& trace,
                                                 const ctrl::ControllerConfig& cfg);

/// Sharded-repair / pipelined-serve differential: streams `trace` through two
/// ServeLoop+controller stacks under the deterministic service model —
/// threads=1 with the pipeline off vs threads=n_threads with the pipeline on.
/// Sharded repair merges in deterministic component order and the pipeline
/// computes every modeled decision at dispatch, so the committed slot_ap, the
/// LoadReport, and the serve telemetry JSON (wall excluded) must be
/// byte-identical — any drift is a partition/merge or dispatch-ordering bug.
/// Checks emitted: serve.repair_parallel_equivalence (state + slot_ap),
/// serve.repair_parallel_loads, serve.repair_parallel_telemetry, plus the
/// controller invariants on the parallel side (serve.repair_parallel_*).
std::vector<OracleResult> check_serve_repair_parallel(const wlan::Scenario& sc,
                                                      const ctrl::EventTrace& trace,
                                                      const ctrl::ControllerConfig& cfg,
                                                      int n_threads);

/// k-connectivity k == 1 identity (DESIGN.md §15): for every solver that
/// supports k (ssa, mla-c, bla-c, mnu-c, local-search), the k == 2 run's
/// primary association and load report must be bit-identical to the k == 1
/// run (the overlay never perturbs the base solve), the k == 1 run must carry
/// an empty overlay, and the k == 2 overlay must satisfy its structural
/// invariants: each served-set contains the primary, is sorted,
/// duplicate-free and capped at min(k, |heard|), and the recomputed multi
/// load report agrees with the Solution's. For mnu-c (the budgeted setting)
/// secondary adoptions must not add budget violations.
std::vector<OracleResult> check_kconn_k1_identity(const wlan::Scenario& sc);

/// k >= 2 parallel differentials: (a) sharded-vs-joint — centralized MLA at
/// k == 2 with the sharded per-session pool path vs the joint serial solve
/// must produce identical served-sets (the serial augmentation is a pure
/// function of the thread-invariant base); (b) threads 1-vs-N — the
/// controller at cfg.k = 2 replayed over `trace` must commit identical
/// slot_ap AND identical k-connectivity overlays after every epoch.
std::vector<OracleResult> check_kconn_parallel(const wlan::Scenario& sc,
                                               const ctrl::EventTrace& trace,
                                               const ctrl::ControllerConfig& cfg,
                                               int n_threads);

/// Incremental kconn engine differential (DESIGN.md §16), the PR 10 gate:
/// (a) controllers at k = 2 with the persistent incremental engine, threads 1
/// and N, replayed over `trace` — after EVERY epoch the maintained overlay
/// and multi-load report must be bitwise equal to a cold augment_to_k +
/// compute_multi_loads re-derivation from the committed association, the two
/// thread counts must agree with each other, and the engine.kconn.* counters
/// must be thread-invariant; (b) two full ServeLoop+controller stacks at
/// k = 2 — threads=1/pipeline=off vs threads=N/pipeline=on — must commit
/// byte-identical state, overlay and serve-telemetry JSON (wall excluded).
std::vector<OracleResult> check_kconn_incremental(const wlan::Scenario& sc,
                                                  const ctrl::EventTrace& trace,
                                                  const ctrl::ControllerConfig& cfg,
                                                  int n_threads);

}  // namespace wmcast::chaos
