#include "wmcast/chaos/oracles.hpp"

#include <cmath>
#include <cstdint>
#include <sstream>
#include <vector>

#include "wmcast/assoc/centralized.hpp"
#include "wmcast/assoc/registry.hpp"
#include "wmcast/core/engine.hpp"
#include "wmcast/core/parallel.hpp"
#include "wmcast/core/solve.hpp"
#include "wmcast/core/workspace.hpp"
#include "wmcast/serve/loop.hpp"
#include "wmcast/setcover/reduction.hpp"
#include "wmcast/setcover/reference.hpp"
#include "wmcast/setcover/set_system.hpp"
#include "wmcast/util/rng.hpp"
#include "wmcast/util/simd.hpp"
#include "wmcast/util/thread_pool.hpp"
#include "wmcast/wlan/association.hpp"

namespace wmcast::chaos {
namespace {

OracleResult ok(std::string check) { return {std::move(check), true, {}}; }

OracleResult bad(std::string check, std::string detail) {
  return {std::move(check), false, std::move(detail)};
}

std::string ids_to_text(const std::vector<int>& v) {
  std::ostringstream os;
  os << '[';
  const size_t shown = std::min<size_t>(v.size(), 16);
  for (size_t i = 0; i < shown; ++i) os << (i ? " " : "") << v[i];
  if (v.size() > shown) os << " ...+" << v.size() - shown;
  os << ']';
  return os.str();
}

/// First index where the two id sequences disagree, formatted for a detail.
std::string seq_diff(const std::vector<int>& a, const std::vector<int>& b) {
  std::ostringstream os;
  size_t i = 0;
  while (i < a.size() && i < b.size() && a[i] == b[i]) ++i;
  os << "diverge at index " << i << ": engine " << ids_to_text(a) << " vs reference "
     << ids_to_text(b);
  return os.str();
}

bool near(double a, double b) {
  return std::abs(a - b) <= 1e-9 * std::max({1.0, std::abs(a), std::abs(b)});
}

}  // namespace

std::string failures_to_text(const std::vector<OracleResult>& results) {
  std::string out;
  for (const auto& r : results) {
    if (r.pass) continue;
    out += r.check;
    out += ": ";
    out += r.detail;
    out += '\n';
  }
  return out;
}

std::vector<OracleResult> check_solver_equivalence(const wlan::Scenario& sc) {
  std::vector<OracleResult> out;
  const auto sys = setcover::build_set_system(sc, /*multi_rate=*/true);
  const auto eng = setcover::to_engine(sys);
  core::SolveWorkspace ws;

  // Greedy CostSC: the engine's lazy-heap greedy must reproduce the eager
  // reference pick for pick (ties broken by the shared better_pick rule).
  {
    const auto a = core::greedy_cover(eng, ws);
    const auto b = setcover::greedy_set_cover_reference(sys);
    if (a.chosen != b.chosen) {
      out.push_back(bad("greedy.chosen", seq_diff(a.chosen, b.chosen)));
    } else if (a.total_cost != b.total_cost || a.complete != b.complete ||
               a.covered.count() != b.covered.count()) {
      std::ostringstream os;
      os << "same chosen, different result: cost " << a.total_cost << " vs "
         << b.total_cost << ", complete " << a.complete << " vs " << b.complete
         << ", covered " << a.covered.count() << " vs " << b.covered.count();
      out.push_back(bad("greedy.result", os.str()));
    } else {
      out.push_back(ok("greedy"));
    }

    // Sharded greedy vs the joint solve: same chosen *set* (order interleaves
    // across shards), identical coverage, same total cost.
    core::SessionShards shards;
    shards.build(eng);
    util::ThreadPool pool(2);
    core::ShardWorkspaces wss;
    auto p = core::parallel_greedy_cover(eng, pool, wss, shards);
    auto sorted_p = p.chosen;
    auto sorted_a = a.chosen;
    std::sort(sorted_p.begin(), sorted_p.end());
    std::sort(sorted_a.begin(), sorted_a.end());
    if (sorted_p != sorted_a || !(p.covered == a.covered)) {
      out.push_back(bad("greedy.sharded", seq_diff(sorted_p, sorted_a)));
    } else if (!near(p.total_cost, a.total_cost)) {
      std::ostringstream os;
      os << "sharded cost " << p.total_cost << " vs joint " << a.total_cost;
      out.push_back(bad("greedy.sharded_cost", os.str()));
    } else {
      out.push_back(ok("greedy.sharded"));
    }
  }

  // MCG with per-AP budgets at the scenario's load budget.
  {
    const std::vector<double> budgets(static_cast<size_t>(sys.n_groups()),
                                      sc.load_budget());
    const auto a = core::mcg_cover(eng, ws, budgets);
    const auto b = setcover::mcg_greedy_reference(sys, budgets);
    bool same_violators = a.violator.size() == b.violator.size();
    for (size_t i = 0; same_violators && i < a.violator.size(); ++i) {
      same_violators = (a.violator[i] != 0) == static_cast<bool>(b.violator[i]);
    }
    if (a.h != b.h) {
      out.push_back(bad("mcg.h", seq_diff(a.h, b.h)));
    } else if (!same_violators) {
      out.push_back(bad("mcg.violators", "same h, different budget-violation marks"));
    } else if (a.chosen != b.chosen || a.covered.count() != b.covered.count()) {
      out.push_back(bad("mcg.chosen", seq_diff(a.chosen, b.chosen)));
    } else {
      out.push_back(ok("mcg"));
    }
  }

  // SCG: same B* search grid on both sides, so the trajectory must match
  // exactly — chosen sets, feasibility, B*, and the winning pass count.
  {
    const auto a = core::scg_cover(eng, ws, core::ScgParams{});
    const auto b = setcover::scg_solve_reference(sys, setcover::ScgParams{});
    if (a.chosen != b.chosen) {
      out.push_back(bad("scg.chosen", seq_diff(a.chosen, b.chosen)));
    } else if (a.feasible != b.feasible || a.bstar != b.bstar ||
               a.passes != b.passes || !near(a.max_group_cost, b.max_group_cost)) {
      std::ostringstream os;
      os << "same chosen, different result: feasible " << a.feasible << " vs "
         << b.feasible << ", bstar " << a.bstar << " vs " << b.bstar << ", passes "
         << a.passes << " vs " << b.passes << ", max_group_cost "
         << a.max_group_cost << " vs " << b.max_group_cost;
      out.push_back(bad("scg.result", os.str()));
    } else {
      out.push_back(ok("scg"));
    }
  }

  return out;
}

std::vector<OracleResult> check_simd_vs_scalar(const wlan::Scenario& sc) {
  std::vector<OracleResult> out;
  struct Snapshot {
    core::CoverResult greedy;
    core::McgResult mcg;
    core::ScgResult scg;
  };
  const auto solve_all = [&sc] {
    Snapshot s;
    const auto sys = setcover::build_set_system(sc, /*multi_rate=*/true);
    const auto eng = setcover::to_engine(sys);
    core::SolveWorkspace ws;
    s.greedy = core::greedy_cover(eng, ws);
    const std::vector<double> budgets(static_cast<size_t>(sys.n_groups()),
                                      sc.load_budget());
    s.mcg = core::mcg_cover(eng, ws, budgets);
    s.scg = core::scg_cover(eng, ws, core::ScgParams{});
    return s;
  };

  Snapshot scalar;
  {
    simd::ScopedMode force(simd::Mode::kScalar);
    scalar = solve_all();
  }
  const Snapshot dispatched = solve_all();

  if (scalar.greedy.chosen != dispatched.greedy.chosen ||
      !(scalar.greedy.covered == dispatched.greedy.covered) ||
      scalar.greedy.total_cost != dispatched.greedy.total_cost ||
      scalar.greedy.complete != dispatched.greedy.complete) {
    out.push_back(bad("simd.greedy",
                      seq_diff(dispatched.greedy.chosen, scalar.greedy.chosen)));
  } else {
    out.push_back(ok("simd.greedy"));
  }

  if (scalar.mcg.h != dispatched.mcg.h ||
      scalar.mcg.chosen != dispatched.mcg.chosen ||
      !(scalar.mcg.covered == dispatched.mcg.covered)) {
    out.push_back(bad("simd.mcg", seq_diff(dispatched.mcg.chosen, scalar.mcg.chosen)));
  } else {
    out.push_back(ok("simd.mcg"));
  }

  if (scalar.scg.chosen != dispatched.scg.chosen ||
      scalar.scg.bstar != dispatched.scg.bstar ||
      scalar.scg.passes != dispatched.scg.passes ||
      !(scalar.scg.covered == dispatched.scg.covered)) {
    out.push_back(bad("simd.scg", seq_diff(dispatched.scg.chosen, scalar.scg.chosen)));
  } else {
    out.push_back(ok("simd.scg"));
  }

  return out;
}

std::vector<OracleResult> check_controller_invariants(
    const ctrl::AssociationController& c, int expected_epochs) {
  std::vector<OracleResult> out;
  const auto& st = c.state();
  const auto& slot_ap = c.slot_ap();

  if (c.epochs() != expected_epochs) {
    std::ostringstream os;
    os << "controller reports " << c.epochs() << " epochs after " << expected_epochs
       << " drains";
    out.push_back(bad("invariant.epochs", os.str()));
  } else {
    out.push_back(ok("invariant.epochs"));
  }

  if (static_cast<int>(slot_ap.size()) != st.n_slots()) {
    std::ostringstream os;
    os << "slot_ap has " << slot_ap.size() << " entries for " << st.n_slots()
       << " slots";
    out.push_back(bad("invariant.slot_space", os.str()));
    return out;  // the remaining checks index slot_ap by slot id
  }
  out.push_back(ok("invariant.slot_space"));

  // Association sanity: a served user wants service, its AP id is real, and
  // the AP can actually reach it. No check that every service-wanting user is
  // served — MCG/admission may legitimately leave users uncovered.
  bool assoc_ok = true;
  for (int i = 0; i < st.n_slots() && assoc_ok; ++i) {
    const int ap = slot_ap[static_cast<size_t>(i)];
    if (ap == wlan::kNoAp) continue;
    std::ostringstream os;
    if (ap < 0 || ap >= st.n_aps()) {
      os << "slot " << i << " assigned to nonexistent AP " << ap;
    } else if (!st.slot(i).wants_service()) {
      os << "slot " << i << " served by AP " << ap << " but does not want service";
    } else if (st.link_rate(ap, i) <= 0.0) {
      os << "slot " << i << " served by out-of-range AP " << ap;
    } else {
      continue;
    }
    out.push_back(bad("invariant.association", os.str()));
    assoc_ok = false;
  }
  if (assoc_ok) out.push_back(ok("invariant.association"));

  // Load-report consistency: the committed report must equal a fresh
  // recomputation from the committed association. Assumes the controller runs
  // the default multi-rate model (true for every chaos campaign config).
  if (assoc_ok) {
    const auto fresh = wlan::compute_loads(
        c.scenario(), ctrl::compact_association(slot_ap, c.row_slot()),
        /*multi_rate=*/true);
    const auto& live = c.loads();
    if (live.ap_load != fresh.ap_load || live.total_load != fresh.total_load ||
        live.max_load != fresh.max_load ||
        live.satisfied_users != fresh.satisfied_users ||
        live.budget_violations != fresh.budget_violations) {
      std::ostringstream os;
      os << "committed report (total " << live.total_load << ", max " << live.max_load
         << ", satisfied " << live.satisfied_users << ", violations "
         << live.budget_violations << ") != recomputed (total " << fresh.total_load
         << ", max " << fresh.max_load << ", satisfied " << fresh.satisfied_users
         << ", violations " << fresh.budget_violations << ")";
      out.push_back(bad("invariant.loads", os.str()));
    } else {
      out.push_back(ok("invariant.loads"));
    }
  }

  return out;
}

std::vector<OracleResult> check_telemetry_conservation(
    const ctrl::AssociationController& c) {
  std::vector<OracleResult> out;
  const auto& t = c.telemetry();
  const uint64_t ingested = t.events_ingested.value();
  const uint64_t applied = t.events_applied.value();
  const uint64_t invalid = t.events_invalid.value();

  auto expect = [&out](bool cond, const char* check, std::string detail) {
    out.push_back(cond ? ok(check) : bad(check, std::move(detail)));
  };

  {
    std::ostringstream os;
    os << "ingested " << ingested << " != applied " << applied << " + invalid "
       << invalid;
    expect(ingested == applied + invalid, "telemetry.event_conservation", os.str());
  }
  {
    uint64_t by_type = 0;
    for (const auto& counter : t.events_by_type) by_type += counter.value();
    std::ostringstream os;
    os << "per-type counts sum to " << by_type << ", ingested " << ingested;
    expect(by_type == ingested, "telemetry.by_type_sum", os.str());
  }
  {
    const uint64_t joins =
        t.events_by_type[static_cast<size_t>(ctrl::EventType::kUserJoin)].value();
    const uint64_t gated = t.joins_admitted.value() + t.joins_rejected.value();
    std::ostringstream os;
    os << "admitted+rejected " << gated << " exceeds join events " << joins;
    expect(gated <= joins, "telemetry.join_gate", os.str());
  }
  {
    std::ostringstream os;
    os << "coalesced " << t.events_coalesced.value() << " exceeds applied " << applied;
    expect(t.events_coalesced.value() <= applied, "telemetry.coalesced", os.str());
  }
  {
    std::ostringstream os;
    os << "drains " << t.drains.value() << " != committed epochs " << t.epochs.value();
    expect(t.drains.value() == t.epochs.value(), "telemetry.drains", os.str());
  }
  {
    const uint64_t reassoc = t.reassociations.value();
    std::ostringstream os;
    os << "handoffs " << t.handoffs.value() << " / forced "
       << t.forced_reassociations.value() << " exceed reassociations " << reassoc;
    expect(t.handoffs.value() <= reassoc && t.forced_reassociations.value() <= reassoc,
           "telemetry.reassociation_split", os.str());
  }
  return out;
}

ReplayCheckResult check_differential_replay(const wlan::Scenario& sc,
                                            const ctrl::EventTrace& trace,
                                            const ctrl::ControllerConfig& cfg,
                                            int n_threads) {
  ReplayCheckResult out;
  ctrl::ControllerConfig serial_cfg = cfg;
  serial_cfg.threads = 1;
  ctrl::ControllerConfig parallel_cfg = cfg;
  parallel_cfg.threads = n_threads;

  ctrl::AssociationController serial(sc, serial_cfg);
  ctrl::AssociationController parallel(sc, parallel_cfg);

  bool invariants_clean = true;
  for (size_t ep = 0; ep < trace.epochs.size(); ++ep) {
    serial.submit(trace.epochs[ep]);
    parallel.submit(trace.epochs[ep]);
    serial.drain();
    parallel.drain();
    ++out.epochs_run;

    if (serial.slot_ap() != parallel.slot_ap()) {
      out.diverged = true;
      out.divergence_epoch = static_cast<int>(ep);
      std::ostringstream os;
      os << "epoch " << ep << ": committed association differs between threads=1 and threads="
         << n_threads;
      out.results.push_back(bad("replay.thread_determinism", os.str()));
      break;
    }
    for (auto& r : check_controller_invariants(serial, out.epochs_run)) {
      if (!r.pass) {
        r.detail = "epoch " + std::to_string(ep) + ": " + r.detail;
        out.results.push_back(std::move(r));
        invariants_clean = false;
      }
    }
  }
  if (!out.diverged) out.results.push_back(ok("replay.thread_determinism"));
  if (invariants_clean) out.results.push_back(ok("replay.invariants"));

  for (auto& r : check_telemetry_conservation(serial)) out.results.push_back(std::move(r));

  // Incremental repair vs a cold full re-solve of the final state. The
  // controller's own fallback ladder bounds drift against its (possibly
  // stale) baseline, so allow the configured threshold plus slack for
  // baseline staleness between refreshes.
  if (!out.diverged && serial.scenario().n_users() > 0) {
    util::Rng rng(cfg.seed);
    assoc::SolveOptions opt;
    opt.multi_rate = cfg.multi_rate;
    const auto cold = assoc::solve_by_name(cfg.full_solver, serial.scenario(), rng, opt);
    const double live = serial.loads().total_load;
    const double bound =
        cold.loads.total_load * (1.0 + cfg.degradation_threshold + 0.25) + 1e-9;
    if (cold.loads.total_load > 0.0 && live > bound) {
      std::ostringstream os;
      os << "final total load " << live << " exceeds cold re-solve "
         << cold.loads.total_load << " by more than the degradation bound " << bound;
      out.results.push_back(bad("replay.bounded_degradation", os.str()));
    } else {
      out.results.push_back(ok("replay.bounded_degradation"));
    }
  }
  return out;
}

std::vector<OracleResult> check_serve_coalescing(const wlan::Scenario& sc,
                                                 const ctrl::EventTrace& trace,
                                                 const ctrl::ControllerConfig& cfg) {
  std::vector<OracleResult> out;

  serve::ServeConfig base;
  base.batch_max = 64;
  base.staleness_s = 0.02;
  base.queue_cap = 0;  // unbounded: both sides must accept the identical stream
  base.modeled_service = true;

  ctrl::AssociationController with(sc, cfg);
  ctrl::AssociationController without(sc, cfg);
  serve::ServeConfig with_cfg = base;
  with_cfg.coalesce = true;
  serve::ServeConfig without_cfg = base;
  without_cfg.coalesce = false;
  serve::ServeLoop loop_with(&with, with_cfg);
  serve::ServeLoop loop_without(&without, without_cfg);

  // Epoch e maps to virtual window [e, e+1) * epoch_s, events spread evenly.
  const double epoch_s = 0.05;
  for (size_t e = 0; e < trace.epochs.size(); ++e) {
    const auto& evs = trace.epochs[e];
    for (size_t i = 0; i < evs.size(); ++i) {
      const double t = (static_cast<double>(e) +
                        static_cast<double>(i + 1) / static_cast<double>(evs.size() + 1)) *
                       epoch_s;
      loop_with.offer(t, evs[i]);
      loop_without.offer(t, evs[i]);
    }
  }
  const serve::ServeTelemetry& tw =
      loop_with.finish(static_cast<double>(trace.n_epochs()) * epoch_s);
  const serve::ServeTelemetry& to =
      loop_without.finish(static_cast<double>(trace.n_epochs()) * epoch_s);

  if (!(with.state() == without.state())) {
    std::ostringstream os;
    os << "final NetworkState differs with coalescing on (" << with.state().n_slots()
       << " slots, " << with.state().n_active() << " active) vs off ("
       << without.state().n_slots() << " slots, " << without.state().n_active()
       << " active)";
    out.push_back(bad("serve.coalesce_equivalence", os.str()));
  } else {
    out.push_back(ok("serve.coalesce_equivalence"));
  }

  const auto conserve = [&out](const char* check, const serve::ServeTelemetry& t) {
    const uint64_t offered = t.offered.value();
    const uint64_t accepted = t.accepted.value();
    const uint64_t handled = t.submitted.value() + t.coalesced.value() + t.shed.value();
    if (offered != accepted + t.rejected.value() || accepted != handled) {
      std::ostringstream os;
      os << "offered " << offered << ", accepted " << accepted << ", rejected "
         << t.rejected.value() << ", submitted " << t.submitted.value() << ", coalesced "
         << t.coalesced.value() << ", shed " << t.shed.value();
      out.push_back(bad(check, os.str()));
    } else {
      out.push_back(ok(check));
    }
  };
  conserve("serve.conservation_coalesced", tw);
  conserve("serve.conservation_plain", to);

  bool invariants_clean = true;
  for (auto& r : check_controller_invariants(with, with.epochs())) {
    if (!r.pass) {
      r.check = "serve." + r.check;
      out.push_back(std::move(r));
      invariants_clean = false;
    }
  }
  if (invariants_clean) out.push_back(ok("serve.invariants"));
  return out;
}

std::vector<OracleResult> check_serve_repair_parallel(const wlan::Scenario& sc,
                                                      const ctrl::EventTrace& trace,
                                                      const ctrl::ControllerConfig& cfg,
                                                      int n_threads) {
  std::vector<OracleResult> out;

  serve::ServeConfig base;
  base.batch_max = 64;
  base.staleness_s = 0.02;
  base.queue_cap = 0;  // unbounded: both sides must accept the identical stream
  base.modeled_service = true;

  ctrl::ControllerConfig seq_cfg = cfg;
  seq_cfg.threads = 1;
  ctrl::ControllerConfig par_cfg = cfg;
  par_cfg.threads = n_threads;
  ctrl::AssociationController seq(sc, seq_cfg);
  ctrl::AssociationController par(sc, par_cfg);
  serve::ServeConfig seq_scfg = base;
  seq_scfg.pipeline = false;
  serve::ServeConfig par_scfg = base;
  par_scfg.pipeline = true;
  serve::ServeLoop loop_seq(&seq, seq_scfg);
  serve::ServeLoop loop_par(&par, par_scfg);

  // Epoch e maps to virtual window [e, e+1) * epoch_s, events spread evenly
  // (same timeline as check_serve_coalescing).
  const double epoch_s = 0.05;
  for (size_t e = 0; e < trace.epochs.size(); ++e) {
    const auto& evs = trace.epochs[e];
    for (size_t i = 0; i < evs.size(); ++i) {
      const double t = (static_cast<double>(e) +
                        static_cast<double>(i + 1) / static_cast<double>(evs.size() + 1)) *
                       epoch_s;
      loop_seq.offer(t, evs[i]);
      loop_par.offer(t, evs[i]);
    }
  }
  const double end = static_cast<double>(trace.n_epochs()) * epoch_s;
  const serve::ServeTelemetry& ts = loop_seq.finish(end);
  const serve::ServeTelemetry& tp = loop_par.finish(end);

  if (!(seq.state() == par.state()) || seq.slot_ap() != par.slot_ap()) {
    std::ostringstream os;
    os << "threads=1/pipeline=off vs threads=" << n_threads
       << "/pipeline=on committed different results: slot_ap "
       << seq_diff(seq.slot_ap(), par.slot_ap());
    out.push_back(bad("serve.repair_parallel_equivalence", os.str()));
  } else {
    out.push_back(ok("serve.repair_parallel_equivalence"));
  }

  // Bitwise, not near(): the sharded merge reduces loads in deterministic
  // component order, so even the FP rounding must match the sequential path.
  if (seq.loads().total_load != par.loads().total_load ||
      seq.loads().max_load != par.loads().max_load) {
    std::ostringstream os;
    os << "loads differ: total " << seq.loads().total_load << " vs "
       << par.loads().total_load << ", max " << seq.loads().max_load << " vs "
       << par.loads().max_load;
    out.push_back(bad("serve.repair_parallel_loads", os.str()));
  } else {
    out.push_back(ok("serve.repair_parallel_loads"));
  }

  // Serve telemetry with wall excluded is a pure function of (workload,
  // config); the pipeline and the shard partition must not leak into it.
  const std::string js = ts.to_json(/*include_wall=*/false).dump();
  const std::string jp = tp.to_json(/*include_wall=*/false).dump();
  if (js != jp) {
    size_t i = 0;
    while (i < js.size() && i < jp.size() && js[i] == jp[i]) ++i;
    std::ostringstream os;
    os << "serve telemetry JSON diverges at byte " << i << ": ..."
       << js.substr(i > 20 ? i - 20 : 0, 60) << "... vs ..."
       << jp.substr(i > 20 ? i - 20 : 0, 60) << "...";
    out.push_back(bad("serve.repair_parallel_telemetry", os.str()));
  } else {
    out.push_back(ok("serve.repair_parallel_telemetry"));
  }

  bool invariants_clean = true;
  for (auto& r : check_controller_invariants(par, par.epochs())) {
    if (!r.pass) {
      r.check = "serve.repair_parallel_" + r.check;
      out.push_back(std::move(r));
      invariants_clean = false;
    }
  }
  if (invariants_clean) out.push_back(ok("serve.repair_parallel_invariants"));
  return out;
}

namespace {

/// Structural invariants of a k-connectivity overlay against its primary
/// association: returns the first violation (empty = clean).
std::string kconn_overlay_error(const wlan::Scenario& sc, const assoc::Solution& sol,
                                int k) {
  std::ostringstream os;
  for (int u = 0; u < sc.n_users(); ++u) {
    const auto& sv = sol.multi.aps_of(u);
    const int primary = sol.assoc.ap_of(u);
    if (primary == wlan::kNoAp) {
      if (!sv.empty()) {
        os << "user " << u << ": base-unserved but overlay serves it";
        return os.str();
      }
      continue;
    }
    if (!std::binary_search(sv.begin(), sv.end(), primary)) {
      os << "user " << u << ": served-set misses primary AP " << primary;
      return os.str();
    }
    for (size_t i = 0; i < sv.size(); ++i) {
      if (i > 0 && sv[i] <= sv[i - 1]) {
        os << "user " << u << ": served-set not sorted/duplicate-free";
        return os.str();
      }
      if (!(sc.link_rate(sv[i], u) > 0.0)) {
        os << "user " << u << ": served by AP " << sv[i] << " out of radio range";
        return os.str();
      }
    }
    const int cap = std::min(k, static_cast<int>(sc.aps_of_user(u).size()));
    if (static_cast<int>(sv.size()) > cap) {
      os << "user " << u << ": served-set size " << sv.size() << " exceeds min(k, heard) = "
         << cap;
      return os.str();
    }
  }
  return {};
}

}  // namespace

std::vector<OracleResult> check_kconn_k1_identity(const wlan::Scenario& sc) {
  std::vector<OracleResult> out;
  static const char* kSolvers[] = {"ssa", "mla-c", "bla-c", "mnu-c", "local-search"};
  for (const char* name : kSolvers) {
    const std::string check = std::string("kconn.k1_identity/") + name;
    util::Rng r1(4242);
    util::Rng r2(4242);
    assoc::SolveOptions o1;
    o1.k = 1;
    assoc::SolveOptions o2;
    o2.k = 2;
    const auto s1 = assoc::solve_by_name(name, sc, r1, o1);
    const auto s2 = assoc::solve_by_name(name, sc, r2, o2);
    if (s1.k != 1 || !s1.multi.user_aps.empty()) {
      out.push_back(bad(check, "k=1 run carries a non-empty overlay"));
      continue;
    }
    if (!(s1.assoc == s2.assoc)) {
      out.push_back(bad(check, "k=2 primary association differs from the k=1 run"));
      continue;
    }
    if (s1.loads.ap_load != s2.loads.ap_load ||
        s1.loads.total_load != s2.loads.total_load ||
        s1.loads.max_load != s2.loads.max_load ||
        s1.loads.satisfied_users != s2.loads.satisfied_users) {
      out.push_back(bad(check, "k=2 primary load report differs from the k=1 run"));
      continue;
    }
    std::string err = kconn_overlay_error(sc, s2, 2);
    if (err.empty() && s2.multi_loads.satisfied_users != s2.loads.satisfied_users) {
      err = "overlay changed the served-user count";
    }
    if (err.empty()) {
      const auto fresh = wlan::compute_multi_loads(sc, s2.multi, true);
      if (fresh.ap_load != s2.multi_loads.ap_load ||
          fresh.effective_rate != s2.multi_loads.effective_rate ||
          fresh.total_load != s2.multi_loads.total_load) {
        err = "multi load report does not match a fresh recomputation";
      }
    }
    if (err.empty() && std::string(name) == "mnu-c" &&
        s2.multi_loads.budget_violations > s2.loads.budget_violations) {
      err = "budgeted augmentation added budget violations";
    }
    if (err.empty()) {
      out.push_back(ok(check));
    } else {
      out.push_back(bad(check, err));
    }
  }
  return out;
}

std::vector<OracleResult> check_kconn_parallel(const wlan::Scenario& sc,
                                               const ctrl::EventTrace& trace,
                                               const ctrl::ControllerConfig& cfg,
                                               int n_threads) {
  std::vector<OracleResult> out;

  // (a) Sharded-vs-joint: the k=2 served-sets must be independent of the
  // base solve's sharding (the serial augmentation sees the same base and
  // the same engine either way).
  {
    util::ThreadPool pool(n_threads);
    assoc::CentralizedParams joint;
    joint.k = 2;
    joint.multi_rate = cfg.multi_rate;
    assoc::CentralizedParams sharded = joint;
    sharded.pool = &pool;
    const auto sj = assoc::centralized_mla(sc, joint);
    const auto sp = assoc::centralized_mla(sc, sharded);
    if (!(sj.multi == sp.multi)) {
      out.push_back(bad("kconn.sharded_vs_joint",
                        "k=2 served-sets differ between the joint and sharded MLA solves"));
    } else {
      out.push_back(ok("kconn.sharded_vs_joint"));
    }
  }

  // (b) Controller threads 1-vs-N at k=2: the committed primary association
  // AND the maintained overlay must match after every epoch.
  ctrl::ControllerConfig c1 = cfg;
  c1.k = 2;
  c1.threads = 1;
  ctrl::ControllerConfig cn = cfg;
  cn.k = 2;
  cn.threads = n_threads;
  ctrl::AssociationController serial(sc, c1);
  ctrl::AssociationController parallel(sc, cn);
  bool diverged = false;
  for (size_t ep = 0; ep <= trace.epochs.size() && !diverged; ++ep) {
    if (ep > 0) {
      serial.submit(trace.epochs[ep - 1]);
      parallel.submit(trace.epochs[ep - 1]);
      serial.drain();
      parallel.drain();
    }
    std::ostringstream os;
    if (serial.slot_ap() != parallel.slot_ap()) {
      os << "epoch " << ep << ": committed association differs between threads=1 and threads="
         << n_threads << " at k=2";
      diverged = true;
    } else if (!(serial.multi_assoc() == parallel.multi_assoc())) {
      os << "epoch " << ep << ": k=2 served-sets differ between threads=1 and threads="
         << n_threads;
      diverged = true;
    } else if (serial.multi_loads().effective_rate != parallel.multi_loads().effective_rate) {
      os << "epoch " << ep << ": k=2 effective rates differ between threads=1 and threads="
         << n_threads;
      diverged = true;
    }
    if (diverged) out.push_back(bad("kconn.threads_equivalence", os.str()));
  }
  if (!diverged) out.push_back(ok("kconn.threads_equivalence"));
  return out;
}

namespace {

/// Bitwise diff of a controller's maintained overlay against a cold
/// re-derivation from its own committed state (empty = identical).
std::string kconn_cold_diff(const ctrl::AssociationController& c,
                            const ctrl::ControllerConfig& cfg) {
  const wlan::Scenario& sc = c.scenario();
  assoc::KconnParams kp;
  kp.k = c.k();
  kp.multi_rate = cfg.multi_rate;
  kp.enforce_budget = cfg.enforce_budget;
  wlan::Association base = wlan::Association::none(sc.n_users());
  for (int r = 0; r < sc.n_users(); ++r) {
    base.user_ap[static_cast<size_t>(r)] =
        c.slot_ap()[static_cast<size_t>(c.row_slot()[static_cast<size_t>(r)])];
  }
  const auto cold = assoc::augment_to_k(sc, base, c.loads(), kp);
  if (!(cold == c.multi_assoc())) {
    return "maintained served-sets differ from a cold augment_to_k re-derivation";
  }
  const auto loads = wlan::compute_multi_loads(sc, cold, kp.multi_rate);
  const auto& m = c.multi_loads();
  if (loads.tx_rate != m.tx_rate || loads.ap_load != m.ap_load ||
      loads.effective_rate != m.effective_rate ||
      loads.total_load != m.total_load || loads.max_load != m.max_load ||
      loads.mean_effective_rate != m.mean_effective_rate ||
      loads.satisfied_users != m.satisfied_users ||
      loads.multi_served_users != m.multi_served_users ||
      loads.budget_violations != m.budget_violations) {
    return "maintained multi-load report differs bitwise from compute_multi_loads";
  }
  return {};
}

}  // namespace

std::vector<OracleResult> check_kconn_incremental(const wlan::Scenario& sc,
                                                  const ctrl::EventTrace& trace,
                                                  const ctrl::ControllerConfig& cfg,
                                                  int n_threads) {
  std::vector<OracleResult> out;

  // (a) Per-epoch incremental-vs-cold + threads 1-vs-N at k=2 with the
  // persistent engine on. The cold side is re-derived from each controller's
  // own committed state, so any drift is the incremental engine's.
  ctrl::ControllerConfig c1 = cfg;
  c1.k = std::max(2, cfg.k);
  c1.threads = 1;
  c1.kconn_incremental = true;
  ctrl::ControllerConfig cn = c1;
  cn.threads = n_threads;
  ctrl::AssociationController inc1(sc, c1);
  ctrl::AssociationController incn(sc, cn);
  bool diverged = false;
  for (size_t ep = 0; ep <= trace.epochs.size() && !diverged; ++ep) {
    if (ep > 0) {
      inc1.submit(trace.epochs[ep - 1]);
      incn.submit(trace.epochs[ep - 1]);
      inc1.drain();
      incn.drain();
    }
    std::ostringstream os;
    std::string err = kconn_cold_diff(inc1, c1);
    if (!err.empty()) {
      os << "epoch " << ep << " (threads=1): " << err;
      diverged = true;
    } else if (!(err = kconn_cold_diff(incn, cn)).empty()) {
      os << "epoch " << ep << " (threads=" << n_threads << "): " << err;
      diverged = true;
    } else if (!(inc1.multi_assoc() == incn.multi_assoc()) ||
               inc1.multi_loads().effective_rate !=
                   incn.multi_loads().effective_rate) {
      os << "epoch " << ep << ": incremental overlays differ between threads=1 and threads="
         << n_threads;
      diverged = true;
    }
    if (diverged) out.push_back(bad("kconn.incremental_vs_cold", os.str()));
  }
  if (!diverged) out.push_back(ok("kconn.incremental_vs_cold"));

  // The dirty-region accounting must be a pure function of the applied
  // deltas, never of the pool schedule.
  const ctrl::Telemetry& t1 = inc1.telemetry();
  const ctrl::Telemetry& tn = incn.telemetry();
  if (t1.engine_kconn_repairs.value() != tn.engine_kconn_repairs.value() ||
      t1.engine_kconn_repaired_users.value() !=
          tn.engine_kconn_repaired_users.value() ||
      t1.engine_kconn_carried_users.value() !=
          tn.engine_kconn_carried_users.value() ||
      t1.engine_kconn_rebuilds.value() != tn.engine_kconn_rebuilds.value()) {
    std::ostringstream os;
    os << "engine.kconn counters differ between threads=1 and threads=" << n_threads
       << ": repairs " << t1.engine_kconn_repairs.value() << " vs "
       << tn.engine_kconn_repairs.value() << ", repaired_users "
       << t1.engine_kconn_repaired_users.value() << " vs "
       << tn.engine_kconn_repaired_users.value();
    out.push_back(bad("kconn.incremental_counters", os.str()));
  } else {
    out.push_back(ok("kconn.incremental_counters"));
  }

  // (b) Full serve stacks at k=2: threads=1/pipeline=off vs
  // threads=N/pipeline=on must byte-agree on state, overlay and telemetry.
  serve::ServeConfig sbase;
  sbase.batch_max = 64;
  sbase.staleness_s = 0.02;
  sbase.queue_cap = 0;  // unbounded: both sides accept the identical stream
  sbase.modeled_service = true;
  ctrl::AssociationController seq(sc, c1);
  ctrl::AssociationController par(sc, cn);
  serve::ServeConfig seq_scfg = sbase;
  seq_scfg.pipeline = false;
  serve::ServeConfig par_scfg = sbase;
  par_scfg.pipeline = true;
  serve::ServeLoop loop_seq(&seq, seq_scfg);
  serve::ServeLoop loop_par(&par, par_scfg);
  const double epoch_s = 0.05;
  for (size_t e = 0; e < trace.epochs.size(); ++e) {
    const auto& evs = trace.epochs[e];
    for (size_t i = 0; i < evs.size(); ++i) {
      const double t = (static_cast<double>(e) +
                        static_cast<double>(i + 1) / static_cast<double>(evs.size() + 1)) *
                       epoch_s;
      loop_seq.offer(t, evs[i]);
      loop_par.offer(t, evs[i]);
    }
  }
  const double end = static_cast<double>(trace.n_epochs()) * epoch_s;
  const serve::ServeTelemetry& ts = loop_seq.finish(end);
  const serve::ServeTelemetry& tp = loop_par.finish(end);

  if (!(seq.state() == par.state()) || seq.slot_ap() != par.slot_ap() ||
      !(seq.multi_assoc() == par.multi_assoc()) ||
      seq.multi_loads().effective_rate != par.multi_loads().effective_rate) {
    std::ostringstream os;
    os << "k=2 serve stacks committed different results (threads=1/pipeline=off vs threads="
       << n_threads << "/pipeline=on): slot_ap "
       << seq_diff(seq.slot_ap(), par.slot_ap());
    out.push_back(bad("kconn.serve_parallel_equivalence", os.str()));
  } else {
    out.push_back(ok("kconn.serve_parallel_equivalence"));
  }

  const std::string js = ts.to_json(/*include_wall=*/false).dump();
  const std::string jp = tp.to_json(/*include_wall=*/false).dump();
  if (js != jp) {
    size_t i = 0;
    while (i < js.size() && i < jp.size() && js[i] == jp[i]) ++i;
    std::ostringstream os;
    os << "k=2 serve telemetry JSON diverges at byte " << i << ": ..."
       << js.substr(i > 20 ? i - 20 : 0, 60) << "... vs ..."
       << jp.substr(i > 20 ? i - 20 : 0, 60) << "...";
    out.push_back(bad("kconn.serve_parallel_telemetry", os.str()));
  } else {
    out.push_back(ok("kconn.serve_parallel_telemetry"));
  }
  return out;
}

}  // namespace wmcast::chaos
