#include "wmcast/chaos/campaign.hpp"

#include <exception>
#include <filesystem>
#include <ostream>
#include <stdexcept>

#include "wmcast/chaos/oracles.hpp"
#include "wmcast/ctrl/controller.hpp"
#include "wmcast/ctrl/state.hpp"
#include "wmcast/ctrl/trace.hpp"
#include "wmcast/util/assert.hpp"
#include "wmcast/util/rng.hpp"
#include "wmcast/wlan/scenario_generator.hpp"
#include "wmcast/wlan/serialization.hpp"

namespace wmcast::chaos {
namespace {

void accumulate(FaultLog& into, const FaultLog& add) {
  into.events_dropped += add.events_dropped;
  into.events_duplicated += add.events_duplicated;
  into.events_skewed += add.events_skewed;
  into.windows_reordered += add.windows_reordered;
  into.ap_flaps += add.ap_flaps;
  into.churn_bursts += add.churn_bursts;
  into.lines_corrupted += add.lines_corrupted;
}

std::string file_safe(std::string s) {
  for (char& c : s) {
    const bool keep = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                      (c >= '0' && c <= '9') || c == '-';
    if (!keep) c = '_';
  }
  return s;
}

/// Corrupted-text parser probe: serialized state fed back through the
/// parsers must either round-trip or throw std::invalid_argument — anything
/// else (a crash, an assert, a different exception type) escapes and fails
/// the campaign loudly, which is the point.
template <typename ParseFn>
void probe_parser(FaultInjector& inj, const std::string& clean_text, ParseFn parse,
                  CampaignResult& res) {
  const std::string corrupted = inj.corrupt_text(clean_text);
  ++res.parse_attempts;
  try {
    parse(corrupted);
  } catch (const std::invalid_argument&) {
    ++res.parse_rejected;
  }
}

}  // namespace

CampaignResult run_campaign(const CampaignConfig& cfg, std::ostream* progress) {
  util::require(cfg.scenarios >= 0, "campaign: scenarios must be >= 0");
  util::require(cfg.threads >= 1, "campaign: threads must be >= 1");
  if (cfg.profile != "all") FaultProfile::named(cfg.profile);  // validate early

  CampaignResult res;
  util::Rng master(cfg.seed);
  if (!cfg.out_dir.empty()) std::filesystem::create_directories(cfg.out_dir);

  for (int i = 0; i < cfg.scenarios; ++i) {
    const std::string profile_name =
        cfg.profile == "all"
            ? FaultProfile::names()[static_cast<size_t>(i) % FaultProfile::names().size()]
            : cfg.profile;
    const FaultProfile profile = FaultProfile::named(profile_name);
    util::Rng scenario_rng = master.fork();
    const uint64_t fault_seed = master.next_u64();

    wlan::GeneratorParams gp;
    gp.n_aps = cfg.n_aps;
    gp.n_users = cfg.n_users;
    gp.n_sessions = cfg.n_sessions;
    gp.area_side_m = cfg.area_side_m;
    const auto sc = wlan::generate_scenario(gp, scenario_rng);
    const auto initial = ctrl::NetworkState::from_scenario(sc);

    ctrl::TraceParams tp;
    tp.epochs = cfg.trace_epochs;
    tp.move_fraction = 0.15;
    tp.walk_sigma_m = 30.0;
    tp.zap_fraction = 0.05;
    tp.leave_fraction = 0.03;
    tp.join_fraction = 0.05;
    tp.rate_change_prob = 0.2;
    const auto trace = ctrl::generate_churn_trace(initial, tp, scenario_rng);

    FaultInjector injector(fault_seed, profile);
    const auto perturbed = injector.perturb(trace, initial);

    ctrl::ControllerConfig ccfg;
    ccfg.full_solver = cfg.solver;
    ccfg.seed = fault_seed;
    // Fresh baseline every epoch: the controller's degradation guarantee is
    // relative to its baseline, so the bounded-degradation oracle (which
    // compares against a cold solve of the *current* state) is only sound
    // when the baseline never goes stale.
    ccfg.full_refresh_epochs = 1;

    std::vector<OracleResult> verdicts = check_solver_equivalence(sc);
    const auto simd_verdicts = check_simd_vs_scalar(sc);
    verdicts.insert(verdicts.end(), simd_verdicts.begin(), simd_verdicts.end());
    auto replay = check_differential_replay(sc, perturbed, ccfg, cfg.threads);
    verdicts.insert(verdicts.end(), replay.results.begin(), replay.results.end());
    const auto serve_par =
        check_serve_repair_parallel(sc, perturbed, ccfg, cfg.threads);
    verdicts.insert(verdicts.end(), serve_par.begin(), serve_par.end());
    const auto kconn_k1 = check_kconn_k1_identity(sc);
    verdicts.insert(verdicts.end(), kconn_k1.begin(), kconn_k1.end());
    const auto kconn_par = check_kconn_parallel(sc, perturbed, ccfg, cfg.threads);
    verdicts.insert(verdicts.end(), kconn_par.begin(), kconn_par.end());
    const auto kconn_inc =
        check_kconn_incremental(sc, perturbed, ccfg, cfg.threads);
    verdicts.insert(verdicts.end(), kconn_inc.begin(), kconn_inc.end());

    if (profile.corrupt_prob > 0.0) {
      probe_parser(injector, ctrl::trace_to_text(trace),
                   [](const std::string& t) { ctrl::trace_from_text(t); }, res);
      probe_parser(injector, wlan::to_text(sc),
                   [](const std::string& t) { wlan::from_text(t); }, res);
      // Same instance as an explicit scenario: exercises the v2 sparse_links
      // writer and its parser branch, not just the geometric one.
      std::vector<std::vector<double>> dense(
          static_cast<size_t>(sc.n_aps()),
          std::vector<double>(static_cast<size_t>(sc.n_users()), 0.0));
      for (int a = 0; a < sc.n_aps(); ++a) {
        const wlan::IndexSpan members = sc.users_of_ap(a);
        const double* rates = sc.rates_of_ap(a);
        for (size_t k = 0; k < members.size(); ++k) {
          dense[static_cast<size_t>(a)][static_cast<size_t>(members[k])] = rates[k];
        }
      }
      std::vector<int> sessions(static_cast<size_t>(sc.n_users()));
      for (int u = 0; u < sc.n_users(); ++u) sessions[static_cast<size_t>(u)] = sc.user_session(u);
      std::vector<double> srates(static_cast<size_t>(sc.n_sessions()));
      for (int s = 0; s < sc.n_sessions(); ++s) srates[static_cast<size_t>(s)] = sc.session_rate(s);
      const wlan::Scenario explicit_sc = wlan::Scenario::from_link_rates(
          std::move(dense), std::move(sessions), std::move(srates), sc.load_budget());
      probe_parser(injector, wlan::to_text(explicit_sc),
                   [](const std::string& t) { wlan::from_text(t); }, res);
    }
    accumulate(res.faults, injector.log());

    int failed_here = 0;
    const OracleResult* first_failure = nullptr;
    for (const auto& v : verdicts) {
      ++res.checks_run;
      if (!v.pass) {
        ++res.checks_failed;
        ++failed_here;
        if (first_failure == nullptr) first_failure = &v;
      }
    }

    if (first_failure != nullptr) {
      CampaignFinding finding;
      finding.scenario_index = i;
      finding.seed = fault_seed;
      finding.profile = profile_name;
      finding.repro.check = first_failure->check;
      finding.repro.detail = first_failure->detail;
      finding.repro.seed = fault_seed;
      finding.repro.profile = profile_name;
      finding.repro.solver = cfg.solver;
      finding.repro.threads = cfg.threads;
      finding.repro.scenario = sc;
      finding.repro.trace = perturbed;

      if (cfg.shrink_failures) {
        // "Still failing" = any oracle still objects. Pinning the exact check
        // name would shrink more surgically but risks chasing a failure mode
        // that shifts as events disappear; any-failure is stable and every
        // accepted step is still a genuine repro.
        const auto still_fails = [&](const ctrl::EventTrace& cand) {
          const auto r = check_differential_replay(sc, cand, ccfg, cfg.threads);
          for (const auto& v : r.results) {
            if (!v.pass) return true;
          }
          return false;
        };
        try {
          auto shrunk = shrink_trace(perturbed, still_fails);
          finding.repro.trace = std::move(shrunk.trace);
        } catch (const std::invalid_argument&) {
          // The failure came from check_solver_equivalence, not the replay:
          // the trace is irrelevant to it, so keep the raw trace.
        }
      }

      if (!cfg.out_dir.empty()) {
        const std::string path = cfg.out_dir + "/repro_s" + std::to_string(i) + "_" +
                                 file_safe(finding.repro.check) + ".repro";
        if (save_repro(finding.repro, path)) finding.repro_path = path;
      }
      res.findings.push_back(std::move(finding));
    }

    ++res.scenarios_run;
    if (progress != nullptr) {
      *progress << "chaos: scenario " << i << " profile=" << profile_name
                << " seed=" << fault_seed
                << (failed_here == 0 ? " ok"
                                     : " FAILED (" + std::to_string(failed_here) +
                                           " checks)")
                << '\n';
    }
  }
  return res;
}

util::Json campaign_to_json(const CampaignConfig& cfg, const CampaignResult& res) {
  auto j = util::Json::object();
  auto config = util::Json::object();
  config.set("seed", static_cast<int64_t>(cfg.seed));
  config.set("scenarios", cfg.scenarios);
  config.set("profile", cfg.profile);
  config.set("threads", cfg.threads);
  config.set("solver", cfg.solver);
  config.set("n_aps", cfg.n_aps);
  config.set("n_users", cfg.n_users);
  config.set("n_sessions", cfg.n_sessions);
  config.set("trace_epochs", cfg.trace_epochs);
  j.set("config", std::move(config));

  j.set("scenarios_run", res.scenarios_run);
  j.set("checks_run", res.checks_run);
  j.set("checks_failed", res.checks_failed);
  j.set("parse_attempts", res.parse_attempts);
  j.set("parse_rejected", res.parse_rejected);
  j.set("clean", res.clean());

  auto faults = util::Json::object();
  faults.set("events_dropped", static_cast<int64_t>(res.faults.events_dropped));
  faults.set("events_duplicated", static_cast<int64_t>(res.faults.events_duplicated));
  faults.set("events_skewed", static_cast<int64_t>(res.faults.events_skewed));
  faults.set("windows_reordered", static_cast<int64_t>(res.faults.windows_reordered));
  faults.set("ap_flaps", static_cast<int64_t>(res.faults.ap_flaps));
  faults.set("churn_bursts", static_cast<int64_t>(res.faults.churn_bursts));
  faults.set("lines_corrupted", static_cast<int64_t>(res.faults.lines_corrupted));
  j.set("faults", std::move(faults));

  auto findings = util::Json::array();
  for (const auto& f : res.findings) {
    auto jf = util::Json::object();
    jf.set("scenario_index", f.scenario_index);
    jf.set("seed", static_cast<int64_t>(f.seed));
    jf.set("profile", f.profile);
    jf.set("check", f.repro.check);
    jf.set("detail", f.repro.detail);
    jf.set("trace_events", static_cast<int64_t>(f.repro.trace.n_events()));
    if (!f.repro_path.empty()) jf.set("repro_path", f.repro_path);
    findings.push(std::move(jf));
  }
  j.set("findings", std::move(findings));
  return j;
}

}  // namespace wmcast::chaos
