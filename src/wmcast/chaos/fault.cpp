#include "wmcast/chaos/fault.hpp"

#include <algorithm>
#include <sstream>
#include <stdexcept>

#include "wmcast/util/assert.hpp"

namespace wmcast::chaos {

FaultProfile FaultProfile::named(const std::string& name) {
  FaultProfile p;
  p.name = name;
  if (name == "none") return p;
  if (name == "light") {
    p.drop_prob = 0.02;
    p.duplicate_prob = 0.02;
    p.skew_prob = 0.01;
    return p;
  }
  if (name == "heavy") {
    p.drop_prob = 0.15;
    p.duplicate_prob = 0.10;
    p.skew_prob = 0.05;
    p.flap_prob = 0.10;
    p.burst_prob = 0.10;
    return p;
  }
  if (name == "reorder") {
    p.reorder_prob = 0.5;
    p.reorder_window = 6;
    p.skew_prob = 0.05;
    return p;
  }
  if (name == "malformed") {
    p.corrupt_prob = 0.08;
    return p;
  }
  if (name == "mixed") {
    p.drop_prob = 0.05;
    p.duplicate_prob = 0.05;
    p.reorder_prob = 0.25;
    p.skew_prob = 0.02;
    p.flap_prob = 0.05;
    p.burst_prob = 0.05;
    p.corrupt_prob = 0.04;
    return p;
  }
  if (name == "storm") {
    // Serve-loop stressor: flash crowds (large churn bursts) colliding with
    // AP flaps under sustained load — every epoch has a fair chance of both,
    // so coalescing and backpressure see correlated, bursty, partly-invalid
    // input rather than smooth churn.
    p.flap_prob = 0.35;
    p.flap_leaves = 12;
    p.burst_prob = 0.5;
    p.burst_size = 32;
    p.duplicate_prob = 0.10;
    p.skew_prob = 0.05;
    return p;
  }
  throw std::invalid_argument("FaultProfile: unknown profile '" + name + "'");
}

const std::vector<std::string>& FaultProfile::names() {
  static const std::vector<std::string> kNames = {
      "none", "light", "heavy", "reorder", "malformed", "mixed", "storm"};
  return kNames;
}

FaultInjector::FaultInjector(uint64_t seed, FaultProfile profile)
    : profile_(std::move(profile)), rng_(seed) {}

void FaultInjector::flap(std::vector<ctrl::Event>& epoch,
                         const ctrl::NetworkState& initial) {
  // An AP power-cycles: a run of its neighborhood drops off and rejoins at
  // fresh positions near the AP. Slot ids are drawn from the initial slot
  // range, so against an evolved state some pairs will be invalid — that is
  // the fault being modeled (stale associations racing a recovering AP).
  if (initial.n_aps() == 0 || initial.n_slots() == 0 || initial.n_sessions() == 0) return;
  ++log_.ap_flaps;
  const int ap = rng_.next_int(initial.n_aps());
  const wlan::Point center = initial.ap_positions()[static_cast<size_t>(ap)];
  for (int k = 0; k < profile_.flap_leaves; ++k) {
    const int slot = rng_.next_int(initial.n_slots());
    epoch.push_back(ctrl::Event::leave(slot));
    const wlan::Point pos{center.x + rng_.uniform(-30.0, 30.0),
                          center.y + rng_.uniform(-30.0, 30.0)};
    epoch.push_back(ctrl::Event::join(slot, pos, rng_.next_int(initial.n_sessions())));
  }
}

void FaultInjector::burst(std::vector<ctrl::Event>& epoch,
                          const ctrl::NetworkState& initial) {
  // A stampede of arrivals and departures landing in one drain. Joins target
  // the slot just past the initial range (the only id a join can extend) plus
  // random existing slots; leaves hit random slots.
  if (initial.n_slots() == 0 || initial.n_sessions() == 0) return;
  ++log_.churn_bursts;
  const double side = std::max(1.0, initial.area_side());
  for (int k = 0; k < profile_.burst_size; ++k) {
    if (rng_.next_bool(0.5)) {
      const int slot =
          rng_.next_bool(0.5) ? initial.n_slots() : rng_.next_int(initial.n_slots());
      const wlan::Point pos{rng_.uniform(0.0, side), rng_.uniform(0.0, side)};
      epoch.push_back(ctrl::Event::join(slot, pos, rng_.next_int(initial.n_sessions())));
    } else {
      epoch.push_back(ctrl::Event::leave(rng_.next_int(initial.n_slots())));
    }
  }
}

ctrl::EventTrace FaultInjector::perturb(const ctrl::EventTrace& trace,
                                        const ctrl::NetworkState& initial) {
  ctrl::EventTrace out;
  out.epochs.resize(trace.epochs.size());
  std::vector<ctrl::Event> skewed;  // events displaced into the next epoch

  for (size_t ep = 0; ep < trace.epochs.size(); ++ep) {
    auto& dst = out.epochs[ep];
    // Clock-skewed stragglers from the previous epoch arrive first.
    dst.insert(dst.end(), skewed.begin(), skewed.end());
    skewed.clear();

    for (const auto& e : trace.epochs[ep]) {
      if (profile_.drop_prob > 0.0 && rng_.next_bool(profile_.drop_prob)) {
        ++log_.events_dropped;
        continue;
      }
      if (profile_.skew_prob > 0.0 && ep + 1 < trace.epochs.size() &&
          rng_.next_bool(profile_.skew_prob)) {
        ++log_.events_skewed;
        skewed.push_back(e);
        continue;
      }
      dst.push_back(e);
      if (profile_.duplicate_prob > 0.0 && rng_.next_bool(profile_.duplicate_prob)) {
        ++log_.events_duplicated;
        dst.push_back(e);
      }
    }

    if (profile_.flap_prob > 0.0 && rng_.next_bool(profile_.flap_prob)) {
      flap(dst, initial);
    }
    if (profile_.burst_prob > 0.0 && rng_.next_bool(profile_.burst_prob)) {
      burst(dst, initial);
    }

    // Bounded reordering: shuffle disjoint windows of `reorder_window`
    // consecutive events, so no event moves farther than window-1 positions.
    if (profile_.reorder_prob > 0.0 && profile_.reorder_window > 1 &&
        rng_.next_bool(profile_.reorder_prob)) {
      for (size_t w = 0; w < dst.size(); w += static_cast<size_t>(profile_.reorder_window)) {
        const size_t end = std::min(dst.size(), w + static_cast<size_t>(profile_.reorder_window));
        if (end - w < 2) break;
        std::vector<ctrl::Event> window(dst.begin() + static_cast<ptrdiff_t>(w),
                                        dst.begin() + static_cast<ptrdiff_t>(end));
        rng_.shuffle(window);
        std::copy(window.begin(), window.end(), dst.begin() + static_cast<ptrdiff_t>(w));
        ++log_.windows_reordered;
      }
    }
  }
  return out;
}

std::string FaultInjector::corrupt_text(const std::string& text) {
  if (profile_.corrupt_prob <= 0.0) return text;
  std::istringstream in(text);
  std::string out;
  std::string line;
  while (std::getline(in, line)) {
    if (!line.empty() && rng_.next_bool(profile_.corrupt_prob)) {
      ++log_.lines_corrupted;
      switch (rng_.next_int(3)) {
        case 0:  // truncate the line mid-token
          line.resize(static_cast<size_t>(rng_.next_int(static_cast<int>(line.size()))));
          break;
        case 1: {  // flip one bit of one byte
          const auto i = static_cast<size_t>(rng_.next_int(static_cast<int>(line.size())));
          line[i] = static_cast<char>(line[i] ^ (1 << rng_.next_int(7)));
          break;
        }
        default: {  // delete the first whitespace-separated token
          const auto sp = line.find(' ');
          line = sp == std::string::npos ? std::string() : line.substr(sp + 1);
          break;
        }
      }
    }
    out += line;
    out += '\n';
  }
  return out;
}

}  // namespace wmcast::chaos
