// The production serve loop: a bounded ingress queue in front of the
// association controller, with adaptive batching, bounded-staleness
// coalescing, and reject/shed backpressure — the layer that turns the PR 1
// controller into a long-lived daemon that answers while re-optimizing.
//
// The loop runs a *virtual-time* open-loop queueing discipline. Arrivals
// carry workload timestamps; a batch is drained when it fills (batch_max) or
// when its oldest event has waited staleness_s, whichever is earlier, and
// starts no earlier than the server is free. Service time is either measured
// wall time (production / benches) or a deterministic linear model
// (modeled_service, for byte-identical determinism tests): every queueing,
// batching, and coalescing decision depends only on arrival stamps + config,
// never on the host clock, so a run's decision sequence is a pure function
// of (workload, config).
#pragma once

#include <exception>
#include <string>
#include <thread>
#include <vector>

#include "wmcast/ctrl/controller.hpp"
#include "wmcast/ctrl/events.hpp"
#include "wmcast/serve/latency.hpp"

namespace wmcast::serve {

/// What happens to an arrival when the ingress queue is full.
enum class OverflowPolicy {
  kRejectNewest,  // refuse the arrival (admission control at the edge)
  kShedOldest,    // evict the stalest queued event to admit the new one
};

/// Stable names: "reject" / "shed". from_name throws std::invalid_argument.
const char* overflow_policy_name(OverflowPolicy p);
OverflowPolicy overflow_policy_from_name(const std::string& name);

struct ServeConfig {
  /// Max events per controller drain; <= 0 = unbounded batches.
  int batch_max = 256;
  /// Max virtual seconds the oldest queued event waits before a drain.
  double staleness_s = 0.05;
  /// Ingress queue capacity; 0 = unbounded (backpressure disabled).
  size_t queue_cap = 8192;
  OverflowPolicy policy = OverflowPolicy::kRejectNewest;
  /// Fold redundant per-user move/refresh events inside each batch.
  bool coalesce = true;
  /// Deterministic service model instead of measured wall time: a batch of n
  /// submitted events takes model_batch_s + model_event_s * n virtual
  /// seconds. Tests use this to make the whole decision sequence a pure
  /// function of (workload, config).
  bool modeled_service = false;
  double model_batch_s = 200e-6;
  double model_event_s = 2e-6;
  /// Overlap the controller's repair work with ingest/coalescing of the next
  /// batch: each batch's submit+drain runs on a worker thread, one batch in
  /// flight, batches applied in order. With modeled_service every decision
  /// and telemetry field is computed at dispatch from arrival stamps alone,
  /// so the run stays byte-identical to pipeline = false; with measured
  /// service the loop harvests the in-flight batch before pricing the next
  /// trigger (free_at_ needs the measured service time).
  bool pipeline = false;
};

/// Feeds one AssociationController (borrowed; must outlive the loop) from a
/// timestamped event stream. Call offer() with non-decreasing stamps, then
/// finish() to drain the backlog and flush telemetry. The controller should
/// run with ControllerConfig::max_batch <= 0 so one serve batch maps to one
/// controller epoch (the loop drains to quiescence either way).
class ServeLoop {
 public:
  ServeLoop(ctrl::AssociationController* controller, ServeConfig cfg);
  ~ServeLoop();
  ServeLoop(const ServeLoop&) = delete;
  ServeLoop& operator=(const ServeLoop&) = delete;

  /// An arrival at virtual time t_s (>= every prior stamp). Batches due
  /// before t_s are processed first, then the event enters the ingress queue
  /// under the overflow policy.
  void offer(double t_s, const ctrl::Event& e);

  /// Processes every batch whose start time is due by virtual time t_s.
  void advance_to(double t_s);

  /// Drains the remaining backlog (ignoring the staleness deadline), stamps
  /// virtual_duration_s / wall_elapsed_s, and returns the final telemetry.
  /// `end_t_s` extends the stream end (e.g. the workload's duration) past the
  /// last arrival; < 0 uses the virtual completion time of the last batch.
  const ServeTelemetry& finish(double end_t_s = -1.0);

  const ServeTelemetry& telemetry() const { return telemetry_; }
  /// Virtual time the server becomes free (end of the last started batch).
  double server_free_at() const { return free_at_; }

 private:
  bool process_one_due(double now, bool force);
  /// Joins the in-flight pipelined batch (if any), folds its wall time into
  /// the drain accounting, and — in measured-service mode — commits its
  /// deferred free_at_ update and telemetry. Rethrows a controller error.
  void harvest();
  /// In-place batch coalescing; returns the events to submit, incrementing
  /// telemetry_.coalesced for every event folded away. Safe rules only: the
  /// last move / last subscribe per user wins when that user has nothing but
  /// moves+subscribes in the batch, and the last rate_change per session
  /// always wins — transformations that provably preserve the post-batch
  /// state the controller commits.
  std::vector<ctrl::Event> coalesce_batch(const std::vector<ctrl::StampedEvent>& batch);

  ctrl::AssociationController* controller_;
  ServeConfig cfg_;
  ctrl::EventQueue queue_;
  ServeTelemetry telemetry_;
  double free_at_ = 0.0;
  double last_arrival_ = 0.0;
  double wall_start_ = 0.0;
  double wall_in_drains_ = 0.0;

  // Pipeline state: at most one batch's controller work runs on worker_ while
  // the main thread ingests the next. The worker touches only controller_ and
  // inflight_wall_/inflight_error_; join() publishes them back.
  std::thread worker_;
  bool inflight_ = false;
  double inflight_wall_ = 0.0;
  std::exception_ptr inflight_error_;
  // Measured-service mode defers free_at_ + per-event telemetry to harvest().
  std::vector<ctrl::StampedEvent> inflight_batch_;
  double inflight_start_ = 0.0;
  size_t inflight_submitted_ = 0;
};

}  // namespace wmcast::serve
