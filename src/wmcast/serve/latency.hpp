// Latency-SLO instrumentation for the serve loop: per-event ingest→decision
// latency, batch shape, queue depth, and backpressure accounting, serialized
// under the documented `wmcast-serve-telemetry/v1` schema (docs/cli.md).
//
// Two clocks coexist. *Virtual* time is the workload's arrival timeline plus
// the (possibly modeled) service times — every virtual-derived field is a
// pure function of (workload, config), so it is byte-identical across thread
// counts and machines; determinism tests diff exactly this. *Wall* time is
// what the host actually spent, reported separately and excluded from
// to_json(/*include_wall=*/false).
#pragma once

#include <cstdint>
#include <string>

#include "wmcast/ctrl/telemetry.hpp"
#include "wmcast/util/histogram.hpp"
#include "wmcast/util/json.hpp"

namespace wmcast::serve {

inline constexpr const char* kServeTelemetrySchema = "wmcast-serve-telemetry/v1";

/// The serve loop's instrument set. Conservation invariants (checked by the
/// chaos oracles and tests):
///   offered  == accepted + rejected            (every arrival is accounted)
///   accepted == submitted + coalesced + shed + still queued at flush
struct ServeTelemetry {
  ServeTelemetry();

  // Backpressure counters.
  ctrl::Counter offered;     // arrivals presented to the ingress queue
  ctrl::Counter accepted;    // enqueued
  ctrl::Counter rejected;    // refused at a full queue (kRejectNewest)
  ctrl::Counter shed;        // evicted to admit newer arrivals (kShedOldest)
  ctrl::Counter coalesced;   // folded away by bounded-staleness coalescing
  ctrl::Counter submitted;   // handed to the controller
  ctrl::Counter batches;     // controller drains issued
  // Batches whose oldest event arrived while the server was still busy with
  // the previous batch — the regime where a pipelined loop overlaps repair
  // with ingest. Defined purely on virtual stamps, so the count is identical
  // whether the pipeline is on or off (it measures the workload's pressure,
  // not the implementation).
  ctrl::Counter pipeline_overlapped;

  // Virtual-time distributions. The end-to-end latency splits exactly:
  // latency = queue_wait (ingest -> batch start) + decision (batch start ->
  // decision committed); all three record once per ingested event, so their
  // counts stay equal (a conservation law the tests check).
  util::Histogram latency_s;     // ingest -> decision-committed, per event
  util::Histogram queue_wait_s;  // ingest -> batch start, per event
  util::Histogram decision_s;    // batch start -> decision-committed, per event
  util::Histogram batch_size;    // events per drain, pre-coalescing
  util::Histogram queue_depth;   // backlog observed at each batch close
  util::Histogram service_s;     // per-batch service time (modeled or measured)

  // Stream summary, set by ServeLoop::finish().
  double virtual_duration_s = 0.0;  // arrival-span end incl. final drain
  double wall_elapsed_s = 0.0;      // host time across the whole run

  /// Virtual events/sec: accepted / virtual_duration_s (0 when degenerate).
  double virtual_events_per_s() const;
  /// Wall events/sec: accepted / wall_elapsed_s (0 when degenerate).
  double wall_events_per_s() const;

  /// Serializes under wmcast-serve-telemetry/v1. With include_wall = false
  /// every field is deterministic in (workload, config) — what the
  /// thread-invariance tests compare byte-for-byte.
  util::Json to_json(bool include_wall = true) const;
  /// Human-readable dump (counter table + rendered latency histogram).
  std::string to_text() const;
};

}  // namespace wmcast::serve
