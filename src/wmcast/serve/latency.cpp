#include "wmcast/serve/latency.hpp"

#include <cstdio>

#include "wmcast/util/stats.hpp"

namespace wmcast::serve {

ServeTelemetry::ServeTelemetry()
    // Latency: 1 µs .. ~8 s, factor-2 ladder (SLO quantiles interpolate
    // within a bucket, so the ladder sets their resolution).
    : latency_s(util::Histogram::exponential(1e-6, 2.0, 24)),
      queue_wait_s(util::Histogram::exponential(1e-6, 2.0, 24)),
      decision_s(util::Histogram::exponential(1e-6, 2.0, 24)),
      // Batches: 1 .. ~32k events.
      batch_size(util::Histogram::exponential(1.0, 2.0, 16)),
      // Backlog at batch close, same scale.
      queue_depth(util::Histogram::exponential(1.0, 2.0, 16)),
      // Service: 1 µs .. ~16 s, mirroring ctrl drain_seconds.
      service_s(util::Histogram::exponential(1e-6, 4.0, 13)) {}

double ServeTelemetry::virtual_events_per_s() const {
  if (virtual_duration_s <= 0.0) return 0.0;
  return static_cast<double>(accepted.value()) / virtual_duration_s;
}

double ServeTelemetry::wall_events_per_s() const {
  if (wall_elapsed_s <= 0.0) return 0.0;
  return static_cast<double>(accepted.value()) / wall_elapsed_s;
}

util::Json ServeTelemetry::to_json(bool include_wall) const {
  util::Json counters = util::Json::object();
  counters.set("offered", static_cast<int64_t>(offered.value()));
  counters.set("accepted", static_cast<int64_t>(accepted.value()));
  counters.set("rejected", static_cast<int64_t>(rejected.value()));
  counters.set("shed", static_cast<int64_t>(shed.value()));
  counters.set("coalesced", static_cast<int64_t>(coalesced.value()));
  counters.set("submitted", static_cast<int64_t>(submitted.value()));
  counters.set("batches", static_cast<int64_t>(batches.value()));

  util::Json histograms = util::Json::object();
  histograms.set("latency_s", latency_s.to_json());
  histograms.set("queue_wait_s", queue_wait_s.to_json());
  histograms.set("decision_s", decision_s.to_json());
  histograms.set("batch_size", batch_size.to_json());
  histograms.set("queue_depth", queue_depth.to_json());
  histograms.set("service_s", service_s.to_json());

  util::Json virt = util::Json::object();
  virt.set("duration_s", virtual_duration_s);
  virt.set("events_per_s", virtual_events_per_s());

  util::Json pipeline = util::Json::object();
  pipeline.set("overlapped", static_cast<int64_t>(pipeline_overlapped.value()));
  pipeline.set("occupancy",
               batches.value() > 0
                   ? static_cast<double>(pipeline_overlapped.value()) /
                         static_cast<double>(batches.value())
                   : 0.0);

  util::Json j = util::Json::object();
  j.set("schema", kServeTelemetrySchema);
  j.set("counters", std::move(counters));
  j.set("histograms", std::move(histograms));
  j.set("virtual", std::move(virt));
  j.set("pipeline", std::move(pipeline));
  if (include_wall) {
    util::Json wall = util::Json::object();
    wall.set("elapsed_s", wall_elapsed_s);
    wall.set("events_per_s", wall_events_per_s());
    j.set("wall", std::move(wall));
  }
  return j;
}

std::string ServeTelemetry::to_text() const {
  std::string out;
  char buf[160];
  const auto line = [&](const char* k, uint64_t v) {
    std::snprintf(buf, sizeof(buf), "  %-12s %llu\n", k,
                  static_cast<unsigned long long>(v));
    out += buf;
  };
  out += "serve counters:\n";
  line("offered", offered.value());
  line("accepted", accepted.value());
  line("rejected", rejected.value());
  line("shed", shed.value());
  line("coalesced", coalesced.value());
  line("submitted", submitted.value());
  line("batches", batches.value());
  line("overlapped", pipeline_overlapped.value());
  std::snprintf(buf, sizeof(buf),
                "latency p50 %s  p99 %s  p999 %s  (events/sec virtual %s, wall %s)\n",
                util::fmt(latency_s.quantile(0.5), 4).c_str(),
                util::fmt(latency_s.quantile(0.99), 4).c_str(),
                util::fmt(latency_s.quantile(0.999), 4).c_str(),
                util::fmt(virtual_events_per_s(), 4).c_str(),
                util::fmt(wall_events_per_s(), 4).c_str());
  out += buf;
  std::snprintf(buf, sizeof(buf),
                "queue_wait p99 %s  decision p99 %s\n",
                util::fmt(queue_wait_s.quantile(0.99), 4).c_str(),
                util::fmt(decision_s.quantile(0.99), 4).c_str());
  out += buf;
  out += "latency_s:\n" + latency_s.render();
  return out;
}

}  // namespace wmcast::serve
