#include "wmcast/serve/loop.hpp"

#include <algorithm>
#include <chrono>
#include <limits>
#include <unordered_map>

#include "wmcast/util/assert.hpp"

namespace wmcast::serve {

namespace {

double now_seconds() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

}  // namespace

const char* overflow_policy_name(OverflowPolicy p) {
  switch (p) {
    case OverflowPolicy::kRejectNewest: return "reject";
    case OverflowPolicy::kShedOldest: return "shed";
  }
  return "unknown";
}

OverflowPolicy overflow_policy_from_name(const std::string& name) {
  if (name == "reject") return OverflowPolicy::kRejectNewest;
  if (name == "shed") return OverflowPolicy::kShedOldest;
  util::require(false, "overflow_policy_from_name: unknown policy '" + name + "'");
  return OverflowPolicy::kRejectNewest;  // unreachable
}

ServeLoop::ServeLoop(ctrl::AssociationController* controller, ServeConfig cfg)
    : controller_(controller), cfg_(cfg) {
  util::require(controller_ != nullptr, "ServeLoop: null controller");
  util::require(cfg_.staleness_s >= 0.0, "ServeLoop: negative staleness");
  util::require(cfg_.model_batch_s >= 0.0 && cfg_.model_event_s >= 0.0,
                "ServeLoop: negative service model");
  queue_.set_capacity(cfg_.queue_cap);
  wall_start_ = now_seconds();
}

ServeLoop::~ServeLoop() {
  // Abandoned loop: wait for the controller to finish, drop the deferred
  // telemetry (finish() is the supported flush path).
  if (worker_.joinable()) worker_.join();
}

void ServeLoop::harvest() {
  if (!inflight_) return;
  worker_.join();
  inflight_ = false;
  wall_in_drains_ += inflight_wall_;
  if (inflight_error_) {
    std::exception_ptr e = inflight_error_;
    inflight_error_ = nullptr;
    std::rethrow_exception(e);
  }
  if (!cfg_.modeled_service) {
    const double service = inflight_wall_;
    const double done = inflight_start_ + service;
    free_at_ = done;
    for (const auto& se : inflight_batch_) {
      telemetry_.latency_s.record(done - se.t_s);
      telemetry_.queue_wait_s.record(inflight_start_ - se.t_s);
      telemetry_.decision_s.record(done - inflight_start_);
    }
    telemetry_.service_s.record(service);
    telemetry_.submitted.inc(inflight_submitted_);
    telemetry_.batches.inc();
    inflight_batch_.clear();
  }
}

void ServeLoop::offer(double t_s, const ctrl::Event& e) {
  util::require(t_s >= last_arrival_, "ServeLoop: arrival stamps must be non-decreasing");
  last_arrival_ = t_s;
  advance_to(t_s);
  telemetry_.offered.inc();
  if (cfg_.policy == OverflowPolicy::kRejectNewest) {
    if (queue_.try_push(e, t_s)) {
      telemetry_.accepted.inc();
    } else {
      telemetry_.rejected.inc();
    }
  } else {
    if (queue_.push_shed_oldest(e, t_s)) telemetry_.shed.inc();
    telemetry_.accepted.inc();
  }
}

void ServeLoop::advance_to(double t_s) {
  while (process_one_due(t_s, /*force=*/false)) {
  }
}

bool ServeLoop::process_one_due(double now, bool force) {
  const size_t depth = queue_.size();
  if (depth == 0) return false;

  // Measured-service pipelining can't price the next trigger until the
  // in-flight batch's wall time has landed in free_at_.
  if (inflight_ && !cfg_.modeled_service) harvest();

  double t_oldest = 0.0;
  queue_.peek_stamp(0, &t_oldest);

  // The batch is due when it fills (stamp of the batch_max-th event) or when
  // the oldest event hits its staleness deadline, whichever first; force mode
  // (final flush) drains immediately.
  double trigger = force ? t_oldest : t_oldest + cfg_.staleness_s;
  if (cfg_.batch_max > 0 && depth >= static_cast<size_t>(cfg_.batch_max)) {
    double t_full = 0.0;
    queue_.peek_stamp(static_cast<size_t>(cfg_.batch_max) - 1, &t_full);
    trigger = std::min(trigger, t_full);
  }
  const double start = std::max(free_at_, trigger);
  if (!force && start > now) return false;

  // Only events that have arrived by the start instant can ride this batch.
  const size_t limit =
      cfg_.batch_max > 0 ? std::min(depth, static_cast<size_t>(cfg_.batch_max)) : depth;
  size_t take = 0;
  double stamp = 0.0;
  while (take < limit && queue_.peek_stamp(take, &stamp) && stamp <= start) ++take;
  if (take == 0) take = 1;  // force mode: the oldest event defines the start
  const std::vector<ctrl::StampedEvent> batch =
      queue_.drain_stamped(static_cast<int>(take));

  telemetry_.batch_size.record(static_cast<double>(batch.size()));
  telemetry_.queue_depth.record(static_cast<double>(depth));
  // The batch head arrived while the (virtual) server was still busy — the
  // overlap a pipelined loop exploits. Stamp-only, so the count is identical
  // with the pipeline on or off.
  if (t_oldest < free_at_) telemetry_.pipeline_overlapped.inc();

  const std::vector<ctrl::Event> events =
      cfg_.coalesce ? coalesce_batch(batch) : [&] {
        std::vector<ctrl::Event> all;
        all.reserve(batch.size());
        for (const auto& se : batch) all.push_back(se.ev);
        return all;
      }();

  if (!cfg_.pipeline) {
    const double wall0 = now_seconds();
    controller_->submit(events);
    do {
      controller_->drain();
    } while (controller_->pending_events() > 0);
    const double wall = now_seconds() - wall0;
    wall_in_drains_ += wall;

    const double service =
        cfg_.modeled_service
            ? cfg_.model_batch_s + cfg_.model_event_s * static_cast<double>(events.size())
            : wall;
    const double done = start + service;
    free_at_ = done;

    // Every ingested event — including ones coalesced away — has its intent
    // decided when the batch commits.
    for (const auto& se : batch) {
      telemetry_.latency_s.record(done - se.t_s);
      telemetry_.queue_wait_s.record(start - se.t_s);
      telemetry_.decision_s.record(done - start);
    }
    telemetry_.service_s.record(service);
    telemetry_.submitted.inc(events.size());
    telemetry_.batches.inc();
    return true;
  }

  // Pipelined: batches apply in order, so the previous batch's controller
  // work must commit before this one dispatches (one batch in flight).
  harvest();
  if (cfg_.modeled_service) {
    // Modeled service is a pure function of the submitted batch, so free_at_
    // and every telemetry record are committed here at dispatch — the run is
    // byte-identical to pipeline = false; only the controller drain overlaps
    // with ingesting the next batch.
    const double service =
        cfg_.model_batch_s + cfg_.model_event_s * static_cast<double>(events.size());
    const double done = start + service;
    free_at_ = done;
    for (const auto& se : batch) {
      telemetry_.latency_s.record(done - se.t_s);
      telemetry_.queue_wait_s.record(start - se.t_s);
      telemetry_.decision_s.record(done - start);
    }
    telemetry_.service_s.record(service);
    telemetry_.submitted.inc(events.size());
    telemetry_.batches.inc();
  } else {
    inflight_batch_ = batch;
    inflight_start_ = start;
    inflight_submitted_ = events.size();
  }
  inflight_ = true;
  worker_ = std::thread([this, events]() {
    const double wall0 = now_seconds();
    try {
      controller_->submit(events);
      do {
        controller_->drain();
      } while (controller_->pending_events() > 0);
    } catch (...) {
      inflight_error_ = std::current_exception();
    }
    inflight_wall_ = now_seconds() - wall0;
  });
  return true;
}

std::vector<ctrl::Event> ServeLoop::coalesce_batch(
    const std::vector<ctrl::StampedEvent>& batch) {
  // Per user: does the batch hold only moves/subscribes for it, and where are
  // the last ones? Per session: index of the last rate_change.
  struct UserRuns {
    bool only_move_subscribe = true;
    int last_move = -1;
    int last_subscribe = -1;
  };
  std::unordered_map<int, UserRuns> users;
  std::unordered_map<int, int> last_rate;
  for (int i = 0; i < static_cast<int>(batch.size()); ++i) {
    const ctrl::Event& ev = batch[static_cast<size_t>(i)].ev;
    switch (ev.type) {
      case ctrl::EventType::kUserMove:
        users[ev.user].last_move = i;
        break;
      case ctrl::EventType::kSubscribe:
        users[ev.user].last_subscribe = i;
        break;
      case ctrl::EventType::kRateChange:
        last_rate[ev.session] = i;
        break;
      case ctrl::EventType::kUserJoin:
      case ctrl::EventType::kUserLeave:
      case ctrl::EventType::kUnsubscribe:
        users[ev.user].only_move_subscribe = false;
        break;
    }
  }

  std::vector<ctrl::Event> out;
  out.reserve(batch.size());
  for (int i = 0; i < static_cast<int>(batch.size()); ++i) {
    const ctrl::Event& ev = batch[static_cast<size_t>(i)].ev;
    bool keep = true;
    switch (ev.type) {
      case ctrl::EventType::kUserMove: {
        const UserRuns& r = users[ev.user];
        keep = !r.only_move_subscribe || i == r.last_move;
        break;
      }
      case ctrl::EventType::kSubscribe: {
        const UserRuns& r = users[ev.user];
        keep = !r.only_move_subscribe || i == r.last_subscribe;
        break;
      }
      case ctrl::EventType::kRateChange:
        keep = i == last_rate[ev.session];
        break;
      default:
        break;
    }
    if (keep) {
      out.push_back(ev);
    } else {
      telemetry_.coalesced.inc();
    }
  }
  return out;
}

const ServeTelemetry& ServeLoop::finish(double end_t_s) {
  while (process_one_due(std::numeric_limits<double>::infinity(), /*force=*/true)) {
  }
  harvest();  // the final batch may still be in flight
  telemetry_.virtual_duration_s = std::max({end_t_s, free_at_, last_arrival_});
  telemetry_.wall_elapsed_s = now_seconds() - wall_start_;
  return telemetry_;
}

}  // namespace wmcast::serve
