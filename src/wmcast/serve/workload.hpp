// Deterministic workload synthesis for the serve loop: a pull-based generator
// that turns a seed + named profile into a timestamped stream of valid
// controller events (joins, leaves, moves, zaps, rate changes) with the
// temporal structure production WLAN controllers actually face — diurnal
// rate ramps, flash crowds that slam one spot with correlated joins, and a
// drifting hotspot that keeps a fraction of mobility concentrated. The same
// (initial state, profile, params) always yields the same stream, so serve
// benchmarks and determinism tests are reproducible by construction.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "wmcast/ctrl/events.hpp"
#include "wmcast/ctrl/state.hpp"
#include "wmcast/ctrl/trace.hpp"
#include "wmcast/util/rng.hpp"

namespace wmcast::serve {

/// An event with its virtual arrival time. Streams are non-decreasing in t_s.
struct TimedEvent {
  double t_s = 0.0;
  ctrl::Event ev;
};

/// Shape of the synthesized load. Category weights are relative (normalized
/// internally); temporal features are off when their controlling field is 0.
struct WorkloadProfile {
  std::string name = "steady";

  // Relative event-category weights.
  double move_weight = 0.6;
  double zap_weight = 0.25;
  double leave_weight = 0.05;
  double join_weight = 0.05;
  double rate_change_weight = 0.05;

  /// Gaussian random-walk step for moves (meters); 0 = uniform teleport.
  double walk_sigma_m = 10.0;

  // Diurnal modulation: rate multiplier 1 + amplitude * sin(2*pi*t/period).
  double diurnal_amplitude = 0.0;   // 0 = flat
  double diurnal_period_s = 60.0;

  // Flash crowds: with probability flash_prob_per_s (per second), a burst of
  // size_frac * n_slots correlated join+subscribe events lands inside
  // flash_radius_m of a random point, all within one tick.
  double flash_prob_per_s = 0.0;
  double flash_size_frac = 0.0;
  double flash_radius_m = 30.0;

  // Hotspot drift: this fraction of moves targets a Gaussian cloud of
  // hotspot_radius_m around a center that drifts at hotspot_speed_mps
  // (bouncing off the area edges).
  double hotspot_fraction = 0.0;
  double hotspot_radius_m = 40.0;
  double hotspot_speed_mps = 1.5;

  /// Named profiles: steady, diurnal, flash, hotspot, mixed. Throws
  /// std::invalid_argument for unknown names.
  static WorkloadProfile named(const std::string& name);
  /// All named profiles, in documentation order.
  static std::vector<std::string> names();
};

struct WorkloadParams {
  double duration_s = 10.0;     // virtual stream length
  double events_per_s = 1000.0; // mean aggregate arrival rate (pre-modulation)
  uint64_t seed = 1;
  double tick_s = 0.1;          // generation granularity
};

/// Pull-based generator. Tracks an internal NetworkState copy so every
/// emitted event is valid against the stream so far (moves target present
/// users, joins reuse absent slots before extending the slot space, zaps
/// pick a genuinely different session).
class WorkloadGenerator {
 public:
  WorkloadGenerator(const ctrl::NetworkState& initial, WorkloadProfile profile,
                    WorkloadParams params);

  /// Produces the next event; false once the stream is exhausted (virtual
  /// time passed duration_s). Timestamps are non-decreasing.
  bool next(TimedEvent* out);

  /// The evolved state after everything emitted so far (what a controller
  /// that applied every event would hold).
  const ctrl::NetworkState& state() const { return st_; }

 private:
  void refill();
  void emit_one(double t);
  void emit_flash(double t);
  wlan::Point random_point();
  wlan::Point move_target(const wlan::Point& from);
  int pick_present();

  ctrl::NetworkState st_;
  WorkloadProfile profile_;
  WorkloadParams params_;
  util::Rng rng_;
  double side_ = 0.0;
  double tick_t_ = 0.0;      // start time of the next tick to generate
  wlan::Point hotspot_{};
  wlan::Point hotspot_v_{};  // meters/sec drift velocity
  std::vector<int> present_;   // slots with present == true
  std::vector<int> absent_;    // slots with present == false (rejoin pool)
  std::vector<int> slot_pos_;  // slot -> index in present_ (or -1)
  std::vector<TimedEvent> buf_;
  size_t buf_next_ = 0;
};

/// Runs the generator to completion. Convenience for tests and trace export.
std::vector<TimedEvent> generate_workload(const ctrl::NetworkState& initial,
                                          const WorkloadProfile& profile,
                                          const WorkloadParams& params);

/// Bins a timed stream into trace epochs of `epoch_s` seconds (events keep
/// their order; empty trailing epochs are preserved so duration round-trips).
/// The result feeds ctrl::trace_to_text / wmcast_cli replay unchanged.
ctrl::EventTrace workload_to_trace(const std::vector<TimedEvent>& events,
                                   double duration_s, double epoch_s);

}  // namespace wmcast::serve
