#include "wmcast/serve/workload.hpp"

#include <algorithm>
#include <cmath>

#include "wmcast/util/assert.hpp"

namespace wmcast::serve {

namespace {

constexpr double kPi = 3.14159265358979323846;

double gaussian(util::Rng& rng) {
  // Box-Muller; u1 bounded away from 0 so the log is finite.
  const double u1 = std::max(rng.next_double(), 1e-12);
  const double u2 = rng.next_double();
  return std::sqrt(-2.0 * std::log(u1)) * std::cos(2.0 * kPi * u2);
}

}  // namespace

WorkloadProfile WorkloadProfile::named(const std::string& name) {
  WorkloadProfile p;
  p.name = name;
  if (name == "steady") {
    return p;
  }
  if (name == "diurnal") {
    p.diurnal_amplitude = 0.8;
    p.diurnal_period_s = 60.0;
    return p;
  }
  if (name == "flash") {
    // Bursty: correlated join storms on top of a churny base — the profile
    // where batching + coalescing should beat --batch-max=1 hardest.
    p.move_weight = 0.45;
    p.zap_weight = 0.2;
    p.leave_weight = 0.15;
    p.join_weight = 0.15;
    p.flash_prob_per_s = 0.5;
    p.flash_size_frac = 0.02;
    return p;
  }
  if (name == "hotspot") {
    p.hotspot_fraction = 0.7;
    return p;
  }
  if (name == "mixed") {
    p.diurnal_amplitude = 0.5;
    p.flash_prob_per_s = 0.2;
    p.flash_size_frac = 0.01;
    p.hotspot_fraction = 0.5;
    return p;
  }
  util::require(false, "WorkloadProfile: unknown profile '" + name + "'");
  return p;  // unreachable
}

std::vector<std::string> WorkloadProfile::names() {
  return {"steady", "diurnal", "flash", "hotspot", "mixed"};
}

WorkloadGenerator::WorkloadGenerator(const ctrl::NetworkState& initial,
                                     WorkloadProfile profile, WorkloadParams params)
    : st_(initial),
      profile_(std::move(profile)),
      params_(params),
      rng_(params.seed) {
  util::require(params_.duration_s >= 0.0, "workload: negative duration");
  util::require(params_.events_per_s >= 0.0, "workload: negative rate");
  util::require(params_.tick_s > 0.0, "workload: tick must be positive");
  const double w = profile_.move_weight + profile_.zap_weight + profile_.leave_weight +
                   profile_.join_weight + profile_.rate_change_weight;
  util::require(w > 0.0, "workload: all category weights are zero");

  side_ = std::max(st_.area_side(), 1.0);
  slot_pos_.assign(static_cast<size_t>(st_.n_slots()), -1);
  for (int s = 0; s < st_.n_slots(); ++s) {
    if (st_.slot(s).present) {
      slot_pos_[static_cast<size_t>(s)] = static_cast<int>(present_.size());
      present_.push_back(s);
    } else {
      absent_.push_back(s);
    }
  }

  hotspot_ = random_point();
  const double theta = rng_.uniform(0.0, 2.0 * kPi);
  hotspot_v_ = {profile_.hotspot_speed_mps * std::cos(theta),
                profile_.hotspot_speed_mps * std::sin(theta)};
}

wlan::Point WorkloadGenerator::random_point() {
  return {rng_.uniform(0.0, side_), rng_.uniform(0.0, side_)};
}

wlan::Point WorkloadGenerator::move_target(const wlan::Point& from) {
  if (profile_.hotspot_fraction > 0.0 && rng_.next_bool(profile_.hotspot_fraction)) {
    return {std::clamp(hotspot_.x + profile_.hotspot_radius_m * gaussian(rng_), 0.0, side_),
            std::clamp(hotspot_.y + profile_.hotspot_radius_m * gaussian(rng_), 0.0, side_)};
  }
  if (profile_.walk_sigma_m > 0.0) {
    return {std::clamp(from.x + profile_.walk_sigma_m * gaussian(rng_), 0.0, side_),
            std::clamp(from.y + profile_.walk_sigma_m * gaussian(rng_), 0.0, side_)};
  }
  return random_point();
}

int WorkloadGenerator::pick_present() {
  return present_[static_cast<size_t>(rng_.next_int(static_cast<int>(present_.size())))];
}

void WorkloadGenerator::emit_one(double t) {
  const bool have_present = !present_.empty();
  const bool can_zap = have_present && st_.n_sessions() > 1;
  const bool can_rate = st_.n_sessions() > 0;

  const double wm = have_present ? profile_.move_weight : 0.0;
  const double wz = can_zap ? profile_.zap_weight : 0.0;
  const double wl = have_present ? profile_.leave_weight : 0.0;
  const double wr = can_rate ? profile_.rate_change_weight : 0.0;
  const double wj = profile_.join_weight;
  const double total = wm + wz + wl + wr + wj;

  ctrl::Event ev;
  const double r = rng_.next_double() * total;
  if (total <= 0.0 || r < wj || (r >= wj + wm + wz + wl + wr)) {
    // Join: reuse an absent slot when one exists (bounds the slot space under
    // sustained churn), otherwise extend.
    int slot;
    if (!absent_.empty()) {
      const size_t i = static_cast<size_t>(rng_.next_int(static_cast<int>(absent_.size())));
      slot = absent_[i];
      absent_[i] = absent_.back();
      absent_.pop_back();
    } else {
      slot = st_.n_slots();
      slot_pos_.push_back(-1);
    }
    const int session = st_.n_sessions() > 0 ? rng_.next_int(st_.n_sessions()) : 0;
    ev = ctrl::Event::join(slot, move_target(random_point()), session);
    slot_pos_[static_cast<size_t>(slot)] = static_cast<int>(present_.size());
    present_.push_back(slot);
  } else if (r < wj + wm) {
    const int u = pick_present();
    ev = ctrl::Event::move(u, move_target(st_.slot(u).pos));
  } else if (r < wj + wm + wz) {
    const int u = pick_present();
    const int old = st_.slot(u).session;
    int next = rng_.next_int(st_.n_sessions() - 1);
    if (next >= old) ++next;
    ev = ctrl::Event::subscribe(u, next);
  } else if (r < wj + wm + wz + wl) {
    const int u = pick_present();
    ev = ctrl::Event::leave(u);
    const int i = slot_pos_[static_cast<size_t>(u)];
    slot_pos_[static_cast<size_t>(present_.back())] = i;
    present_[static_cast<size_t>(i)] = present_.back();
    present_.pop_back();
    slot_pos_[static_cast<size_t>(u)] = -1;
    absent_.push_back(u);
  } else {
    const int s = rng_.next_int(st_.n_sessions());
    const double span = std::log(2.0);
    ev = ctrl::Event::rate_change(s, st_.session_rate(s) * std::exp(rng_.uniform(-span, span)));
  }

  st_.apply(ev);
  buf_.push_back(TimedEvent{t, ev});
}

void WorkloadGenerator::emit_flash(double t) {
  const wlan::Point center = random_point();
  const int burst = std::max(
      1, static_cast<int>(std::lround(profile_.flash_size_frac * st_.n_slots())));
  for (int k = 0; k < burst; ++k) {
    int slot;
    if (!absent_.empty()) {
      const size_t i = static_cast<size_t>(rng_.next_int(static_cast<int>(absent_.size())));
      slot = absent_[i];
      absent_[i] = absent_.back();
      absent_.pop_back();
    } else {
      slot = st_.n_slots();
      slot_pos_.push_back(-1);
    }
    const wlan::Point p{
        std::clamp(center.x + profile_.flash_radius_m * gaussian(rng_), 0.0, side_),
        std::clamp(center.y + profile_.flash_radius_m * gaussian(rng_), 0.0, side_)};
    const int session = st_.n_sessions() > 0 ? rng_.next_int(st_.n_sessions()) : 0;
    const ctrl::Event ev = ctrl::Event::join(slot, p, session);
    slot_pos_[static_cast<size_t>(slot)] = static_cast<int>(present_.size());
    present_.push_back(slot);
    st_.apply(ev);
    buf_.push_back(TimedEvent{t, ev});
  }
}

void WorkloadGenerator::refill() {
  buf_.clear();
  buf_next_ = 0;
  while (buf_.empty() && tick_t_ < params_.duration_s) {
    const double t0 = tick_t_;
    const double tick = std::min(params_.tick_s, params_.duration_s - t0);
    tick_t_ += params_.tick_s;

    // Drift the hotspot, bouncing off the area edges.
    hotspot_.x += hotspot_v_.x * tick;
    hotspot_.y += hotspot_v_.y * tick;
    if (hotspot_.x < 0.0 || hotspot_.x > side_) {
      hotspot_v_.x = -hotspot_v_.x;
      hotspot_.x = std::clamp(hotspot_.x, 0.0, side_);
    }
    if (hotspot_.y < 0.0 || hotspot_.y > side_) {
      hotspot_v_.y = -hotspot_v_.y;
      hotspot_.y = std::clamp(hotspot_.y, 0.0, side_);
    }

    const double mult = std::max(
        0.0, 1.0 + profile_.diurnal_amplitude *
                       std::sin(2.0 * kPi * t0 / std::max(profile_.diurnal_period_s, 1e-9)));
    const double expected = params_.events_per_s * mult * tick;
    const int n = static_cast<int>(expected) +
                  (rng_.next_bool(expected - std::floor(expected)) ? 1 : 0);
    for (int i = 0; i < n; ++i) {
      emit_one(t0 + tick * static_cast<double>(i + 1) / static_cast<double>(n + 1));
    }
    if (profile_.flash_prob_per_s > 0.0 &&
        rng_.next_bool(std::min(1.0, profile_.flash_prob_per_s * tick))) {
      emit_flash(t0 + tick);
    }
  }
}

bool WorkloadGenerator::next(TimedEvent* out) {
  if (buf_next_ >= buf_.size()) {
    refill();
    if (buf_.empty()) return false;
  }
  *out = buf_[buf_next_++];
  return true;
}

std::vector<TimedEvent> generate_workload(const ctrl::NetworkState& initial,
                                          const WorkloadProfile& profile,
                                          const WorkloadParams& params) {
  WorkloadGenerator gen(initial, profile, params);
  std::vector<TimedEvent> out;
  TimedEvent te;
  while (gen.next(&te)) out.push_back(te);
  return out;
}

ctrl::EventTrace workload_to_trace(const std::vector<TimedEvent>& events,
                                   double duration_s, double epoch_s) {
  util::require(epoch_s > 0.0, "workload_to_trace: epoch_s must be positive");
  const int n_epochs =
      std::max(1, static_cast<int>(std::ceil(duration_s / epoch_s)));
  ctrl::EventTrace trace;
  trace.epochs.resize(static_cast<size_t>(n_epochs));
  for (const TimedEvent& te : events) {
    const int e = std::min(n_epochs - 1,
                           std::max(0, static_cast<int>(te.t_s / epoch_s)));
    trace.epochs[static_cast<size_t>(e)].push_back(te.ev);
  }
  return trace;
}

}  // namespace wmcast::serve
