#include "wmcast/hardness/reductions.hpp"

#include <algorithm>
#include <limits>
#include <numeric>

#include "wmcast/util/assert.hpp"

namespace wmcast::hardness {

wlan::Scenario subset_sum_to_mnu(const SubsetSumInstance& in) {
  util::require(!in.values.empty(), "subset_sum_to_mnu: empty instance");
  util::require(in.target > 0, "subset_sum_to_mnu: target must be positive");
  int64_t total = 0;
  for (const int64_t g : in.values) {
    util::require(g > 0, "subset_sum_to_mnu: values must be natural numbers");
    total += g;
  }
  // D makes the AP budget T/D and all session loads g_i/D fall in (0, 1].
  const double d = 2.0 * static_cast<double>(std::max(total, in.target));

  const int k = static_cast<int>(in.values.size());
  const auto n_users = static_cast<int>(total);

  std::vector<double> session_rates(static_cast<size_t>(k));
  for (int i = 0; i < k; ++i) {
    session_rates[static_cast<size_t>(i)] = static_cast<double>(in.values[static_cast<size_t>(i)]) / d;
  }
  std::vector<int> user_session;
  user_session.reserve(static_cast<size_t>(n_users));
  for (int i = 0; i < k; ++i) {
    for (int64_t c = 0; c < in.values[static_cast<size_t>(i)]; ++c) user_session.push_back(i);
  }
  // Single AP, unit rate to everyone.
  std::vector<std::vector<double>> link(1, std::vector<double>(static_cast<size_t>(n_users), 1.0));
  const double budget = static_cast<double>(in.target) / d;
  return wlan::Scenario::from_link_rates(std::move(link), std::move(user_session),
                                         std::move(session_rates), budget);
}

int64_t subset_sum_best(const SubsetSumInstance& in) {
  util::require(in.target >= 0, "subset_sum_best: negative target");
  std::vector<bool> reachable(static_cast<size_t>(in.target) + 1, false);
  reachable[0] = true;
  for (const int64_t g : in.values) {
    if (g > in.target) continue;
    for (int64_t s = in.target; s >= g; --s) {
      if (reachable[static_cast<size_t>(s - g)]) reachable[static_cast<size_t>(s)] = true;
    }
  }
  for (int64_t s = in.target; s >= 0; --s) {
    if (reachable[static_cast<size_t>(s)]) return s;
  }
  return 0;
}

wlan::Scenario makespan_to_bla(const MakespanInstance& in) {
  util::require(!in.processing.empty(), "makespan_to_bla: no jobs");
  util::require(in.machines > 0, "makespan_to_bla: need at least one machine");
  double total = 0.0;
  for (const double p : in.processing) {
    util::require(p > 0.0, "makespan_to_bla: processing times must be positive");
    total += p;
  }
  const double d = 2.0 * total;  // keeps every load in (0, 1]

  const int n = static_cast<int>(in.processing.size());
  std::vector<double> session_rates(static_cast<size_t>(n));
  for (int i = 0; i < n; ++i) session_rates[static_cast<size_t>(i)] = in.processing[static_cast<size_t>(i)] / d;
  std::vector<int> user_session(static_cast<size_t>(n));
  std::iota(user_session.begin(), user_session.end(), 0);
  // Every machine (AP) reaches every job's user at unit rate.
  std::vector<std::vector<double>> link(
      static_cast<size_t>(in.machines), std::vector<double>(static_cast<size_t>(n), 1.0));
  return wlan::Scenario::from_link_rates(std::move(link), std::move(user_session),
                                         std::move(session_rates), 1.0);
}

namespace {

void makespan_dfs(const std::vector<double>& jobs, size_t i, std::vector<double>& machine,
                  double& best) {
  const double cur = *std::max_element(machine.begin(), machine.end());
  if (cur >= best) return;
  if (i == jobs.size()) {
    best = cur;
    return;
  }
  for (auto& m : machine) {
    m += jobs[i];
    makespan_dfs(jobs, i + 1, machine, best);
    m -= jobs[i];
    if (m == 0.0) break;  // symmetry: first empty machine only
  }
}

}  // namespace

double makespan_optimal(const MakespanInstance& in) {
  util::require(static_cast<int>(in.processing.size()) <= 16,
                "makespan_optimal: exhaustive solver limited to 16 jobs");
  std::vector<double> jobs = in.processing;
  std::sort(jobs.begin(), jobs.end(), std::greater<>());  // big jobs first prune better
  std::vector<double> machine(static_cast<size_t>(in.machines), 0.0);
  double best = std::numeric_limits<double>::infinity();
  makespan_dfs(jobs, 0, machine, best);
  return best;
}

wlan::Scenario set_cover_to_mla(const SetCoverInstance& in) {
  util::require(in.n_elements > 0, "set_cover_to_mla: empty universe");
  util::require(!in.sets.empty(), "set_cover_to_mla: no sets");
  const int m = static_cast<int>(in.sets.size());

  std::vector<std::vector<double>> link(
      static_cast<size_t>(m), std::vector<double>(static_cast<size_t>(in.n_elements), 0.0));
  for (int j = 0; j < m; ++j) {
    for (const int e : in.sets[static_cast<size_t>(j)]) {
      util::require(e >= 0 && e < in.n_elements, "set_cover_to_mla: element out of range");
      link[static_cast<size_t>(j)][static_cast<size_t>(e)] = 1.0;
    }
  }
  std::vector<int> user_session(static_cast<size_t>(in.n_elements), 0);
  const std::vector<double> session_rates{set_cover_unit_load(in)};
  return wlan::Scenario::from_link_rates(std::move(link), std::move(user_session),
                                         session_rates, 1.0);
}

double set_cover_unit_load(const SetCoverInstance&) {
  // Any value in (0, 1] works; 0.5 keeps one transmission well inside the
  // budget while making total-load differences easy to decode.
  return 0.5;
}

int set_cover_optimal(const SetCoverInstance& in) {
  const int m = static_cast<int>(in.sets.size());
  util::require(m <= 20, "set_cover_optimal: enumeration limited to 20 sets");
  const uint32_t full = in.n_elements >= 32 ? 0xffffffffu
                                            : ((1u << in.n_elements) - 1u);
  util::require(in.n_elements <= 32, "set_cover_optimal: at most 32 elements");

  std::vector<uint32_t> mask(static_cast<size_t>(m), 0);
  for (int j = 0; j < m; ++j) {
    for (const int e : in.sets[static_cast<size_t>(j)]) mask[static_cast<size_t>(j)] |= 1u << e;
  }
  int best = -1;
  for (uint32_t pick = 0; pick < (1u << m); ++pick) {
    uint32_t covered = 0;
    for (int j = 0; j < m; ++j) {
      if (pick & (1u << j)) covered |= mask[static_cast<size_t>(j)];
    }
    if (covered == full) {
      const int size = __builtin_popcount(pick);
      if (best == -1 || size < best) best = size;
    }
  }
  return best;
}

}  // namespace wmcast::hardness
