// Executable versions of the paper's NP-hardness reductions (Appendix A/B/C).
// Each builder turns an instance of the classic problem into a WLAN scenario
// whose optimal MNU/BLA/MLA value encodes the classic optimum; brute-force
// reference solvers let the property tests cross-validate the exact solvers
// end-to-end through the reduction.
#pragma once

#include <cstdint>
#include <vector>

#include "wmcast/wlan/scenario.hpp"

namespace wmcast::hardness {

// --- Appendix A: Subset Sum -> MNU ----------------------------------------

struct SubsetSumInstance {
  std::vector<int64_t> values;  // natural numbers g_1..g_k
  int64_t target = 0;           // T
};

/// One AP with multicast budget T/D; session i has stream rate g_i/D and g_i
/// users, every link at unit rate (D scales everything below 1 as the paper
/// prescribes). The subset-sum answer is "yes" iff the optimal MNU value
/// equals T.
wlan::Scenario subset_sum_to_mnu(const SubsetSumInstance& in);

/// Max achievable subset sum <= target (meet-in-the-middle-free DP; values
/// must be small enough for the DP table).
int64_t subset_sum_best(const SubsetSumInstance& in);

// --- Appendix B: Minimum Makespan Scheduling -> BLA ------------------------

struct MakespanInstance {
  std::vector<double> processing;  // p_1..p_n
  int machines = 1;                // m identical machines
};

/// m APs (machines), one user per job, all links at unit rate, session i
/// stream rate p_i/D. Optimal BLA max-load times D equals the optimal
/// makespan.
wlan::Scenario makespan_to_bla(const MakespanInstance& in);

/// Exact minimum makespan by exhaustive assignment (use for small n only).
double makespan_optimal(const MakespanInstance& in);

// --- Appendix C: Set Cover (cardinality) -> MLA -----------------------------

struct SetCoverInstance {
  int n_elements = 0;
  std::vector<std::vector<int>> sets;  // each a list of element ids
};

/// One AP per set, one user per element, one session; AP j reaches exactly
/// the users of S_j at unit rate. Optimal MLA total load divided by the
/// per-transmission load equals the minimum number of covering sets.
wlan::Scenario set_cover_to_mla(const SetCoverInstance& in);

/// Exact minimum cover size by subset enumeration (use for <= ~20 sets).
/// Returns -1 when no cover exists.
int set_cover_optimal(const SetCoverInstance& in);

/// The per-transmission load used by set_cover_to_mla (needed to decode the
/// MLA optimum back into a cover size).
double set_cover_unit_load(const SetCoverInstance& in);

}  // namespace wmcast::hardness
