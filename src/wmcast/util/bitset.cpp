#include "wmcast/util/bitset.hpp"

#include <bit>

#include "wmcast/util/assert.hpp"

namespace wmcast::util {

DynBitset::DynBitset(int n_bits) : n_bits_(n_bits), words_((n_bits + 63) / 64, 0) {
  WMCAST_ASSERT(n_bits >= 0, "bitset size must be non-negative");
}

void DynBitset::set(int i) {
  WMCAST_ASSERT(i >= 0 && i < n_bits_, "bit index out of range");
  words_[i / 64] |= uint64_t{1} << (i % 64);
}

void DynBitset::reset(int i) {
  WMCAST_ASSERT(i >= 0 && i < n_bits_, "bit index out of range");
  words_[i / 64] &= ~(uint64_t{1} << (i % 64));
}

bool DynBitset::test(int i) const {
  WMCAST_ASSERT(i >= 0 && i < n_bits_, "bit index out of range");
  return (words_[i / 64] >> (i % 64)) & 1;
}

void DynBitset::set_all() {
  for (auto& w : words_) w = ~uint64_t{0};
  // Clear the bits above n_bits_ in the last word so count() stays exact.
  if (n_bits_ % 64 != 0 && !words_.empty()) {
    words_.back() &= (uint64_t{1} << (n_bits_ % 64)) - 1;
  }
}

void DynBitset::reset_all() {
  for (auto& w : words_) w = 0;
}

int DynBitset::count() const {
  int total = 0;
  for (const auto w : words_) total += std::popcount(w);
  return total;
}

bool DynBitset::any() const {
  for (const auto w : words_) {
    if (w != 0) return true;
  }
  return false;
}

int DynBitset::and_count(const DynBitset& other) const {
  WMCAST_ASSERT(n_bits_ == other.n_bits_, "bitset universe mismatch");
  int total = 0;
  for (size_t i = 0; i < words_.size(); ++i) {
    total += std::popcount(words_[i] & other.words_[i]);
  }
  return total;
}

int DynBitset::andnot_count(const DynBitset& other) const {
  WMCAST_ASSERT(n_bits_ == other.n_bits_, "bitset universe mismatch");
  int total = 0;
  for (size_t i = 0; i < words_.size(); ++i) {
    total += std::popcount(words_[i] & ~other.words_[i]);
  }
  return total;
}

void DynBitset::resize(int n_bits) {
  WMCAST_ASSERT(n_bits >= 0, "bitset size must be non-negative");
  n_bits_ = n_bits;
  words_.resize(static_cast<size_t>((n_bits + 63) / 64), 0);
  // Clear the bits above n_bits_ in the last word so count() stays exact.
  if (n_bits_ % 64 != 0 && !words_.empty()) {
    words_.back() &= (uint64_t{1} << (n_bits_ % 64)) - 1;
  }
}

bool DynBitset::intersects(const DynBitset& other) const {
  WMCAST_ASSERT(n_bits_ == other.n_bits_, "bitset universe mismatch");
  for (size_t i = 0; i < words_.size(); ++i) {
    if ((words_[i] & other.words_[i]) != 0) return true;
  }
  return false;
}

bool DynBitset::is_subset_of(const DynBitset& other) const {
  WMCAST_ASSERT(n_bits_ == other.n_bits_, "bitset universe mismatch");
  for (size_t i = 0; i < words_.size(); ++i) {
    if ((words_[i] & ~other.words_[i]) != 0) return false;
  }
  return true;
}

void DynBitset::or_assign(const DynBitset& other) {
  WMCAST_ASSERT(n_bits_ == other.n_bits_, "bitset universe mismatch");
  for (size_t i = 0; i < words_.size(); ++i) words_[i] |= other.words_[i];
}

void DynBitset::and_assign(const DynBitset& other) {
  WMCAST_ASSERT(n_bits_ == other.n_bits_, "bitset universe mismatch");
  for (size_t i = 0; i < words_.size(); ++i) words_[i] &= other.words_[i];
}

void DynBitset::andnot_assign(const DynBitset& other) {
  WMCAST_ASSERT(n_bits_ == other.n_bits_, "bitset universe mismatch");
  for (size_t i = 0; i < words_.size(); ++i) words_[i] &= ~other.words_[i];
}

std::vector<int> DynBitset::to_indices() const {
  std::vector<int> out;
  out.reserve(static_cast<size_t>(count()));
  for_each([&out](int i) { out.push_back(i); });
  return out;
}

}  // namespace wmcast::util
