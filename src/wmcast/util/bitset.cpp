#include "wmcast/util/bitset.hpp"

#include "wmcast/util/assert.hpp"
#include "wmcast/util/simd.hpp"

namespace wmcast::util {

DynBitset::DynBitset(int n_bits)
    : n_bits_(n_bits),
      words_(static_cast<std::size_t>((n_bits + 63) / 64), 0) {
  WMCAST_ASSERT(n_bits >= 0, "bitset size must be non-negative");
}

DynBitset::DynBitset(int n_bits, ArenaAllocator<uint64_t> alloc)
    : n_bits_(n_bits),
      words_(static_cast<std::size_t>((n_bits + 63) / 64), 0, alloc) {
  WMCAST_ASSERT(n_bits >= 0, "bitset size must be non-negative");
}

void DynBitset::set(int i) {
  WMCAST_ASSERT(i >= 0 && i < n_bits_, "bit index out of range");
  words_[static_cast<std::size_t>(i) / 64] |= uint64_t{1} << (i % 64);
}

void DynBitset::reset(int i) {
  WMCAST_ASSERT(i >= 0 && i < n_bits_, "bit index out of range");
  words_[static_cast<std::size_t>(i) / 64] &= ~(uint64_t{1} << (i % 64));
}

bool DynBitset::test(int i) const {
  WMCAST_ASSERT(i >= 0 && i < n_bits_, "bit index out of range");
  return (words_[static_cast<std::size_t>(i) / 64] >> (i % 64)) & 1;
}

bool DynBitset::test_and_reset(int i) {
  WMCAST_ASSERT(i >= 0 && i < n_bits_, "bit index out of range");
  uint64_t& w = words_[static_cast<std::size_t>(i) / 64];
  const uint64_t mask = uint64_t{1} << (i % 64);
  const bool was = (w & mask) != 0;
  w &= ~mask;
  return was;
}

void DynBitset::set_all() {
  for (auto& w : words_) w = ~uint64_t{0};
  // Clear the bits above n_bits_ in the last word so count() stays exact.
  if (n_bits_ % 64 != 0 && !words_.empty()) {
    words_.back() &= (uint64_t{1} << (n_bits_ % 64)) - 1;
  }
}

void DynBitset::reset_all() {
  for (auto& w : words_) w = 0;
}

int DynBitset::count() const {
  return simd::popcount_words(words_.data(), words_.size());
}

bool DynBitset::any() const {
  const uint64_t* w = words_.data();
  const std::size_t n = words_.size();
  std::size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    if ((w[i] | w[i + 1] | w[i + 2] | w[i + 3]) != 0) return true;
  }
  for (; i < n; ++i) {
    if (w[i] != 0) return true;
  }
  return false;
}

int DynBitset::and_count(const DynBitset& other) const {
  WMCAST_ASSERT(n_bits_ == other.n_bits_, "bitset universe mismatch");
  return simd::popcount_and_words(words_.data(), other.words_.data(),
                                  words_.size());
}

int DynBitset::andnot_count(const DynBitset& other) const {
  WMCAST_ASSERT(n_bits_ == other.n_bits_, "bitset universe mismatch");
  return simd::popcount_andnot_words(words_.data(), other.words_.data(),
                                     words_.size());
}

void DynBitset::resize(int n_bits) {
  WMCAST_ASSERT(n_bits >= 0, "bitset size must be non-negative");
  n_bits_ = n_bits;
  words_.resize(static_cast<std::size_t>((n_bits + 63) / 64), 0);
  // Clear the bits above n_bits_ in the last word so count() stays exact.
  if (n_bits_ % 64 != 0 && !words_.empty()) {
    words_.back() &= (uint64_t{1} << (n_bits_ % 64)) - 1;
  }
}

bool DynBitset::intersects(const DynBitset& other) const {
  WMCAST_ASSERT(n_bits_ == other.n_bits_, "bitset universe mismatch");
  const uint64_t* a = words_.data();
  const uint64_t* b = other.words_.data();
  const std::size_t n = words_.size();
  std::size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    if (((a[i] & b[i]) | (a[i + 1] & b[i + 1]) | (a[i + 2] & b[i + 2]) |
         (a[i + 3] & b[i + 3])) != 0) {
      return true;
    }
  }
  for (; i < n; ++i) {
    if ((a[i] & b[i]) != 0) return true;
  }
  return false;
}

bool DynBitset::is_subset_of(const DynBitset& other) const {
  WMCAST_ASSERT(n_bits_ == other.n_bits_, "bitset universe mismatch");
  const uint64_t* a = words_.data();
  const uint64_t* b = other.words_.data();
  const std::size_t n = words_.size();
  std::size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    if (((a[i] & ~b[i]) | (a[i + 1] & ~b[i + 1]) | (a[i + 2] & ~b[i + 2]) |
         (a[i + 3] & ~b[i + 3])) != 0) {
      return false;
    }
  }
  for (; i < n; ++i) {
    if ((a[i] & ~b[i]) != 0) return false;
  }
  return true;
}

void DynBitset::or_assign(const DynBitset& other) {
  WMCAST_ASSERT(n_bits_ == other.n_bits_, "bitset universe mismatch");
  uint64_t* a = words_.data();
  const uint64_t* b = other.words_.data();
  for (std::size_t i = 0; i < words_.size(); ++i) a[i] |= b[i];
}

void DynBitset::and_assign(const DynBitset& other) {
  WMCAST_ASSERT(n_bits_ == other.n_bits_, "bitset universe mismatch");
  uint64_t* a = words_.data();
  const uint64_t* b = other.words_.data();
  for (std::size_t i = 0; i < words_.size(); ++i) a[i] &= b[i];
}

void DynBitset::andnot_assign(const DynBitset& other) {
  WMCAST_ASSERT(n_bits_ == other.n_bits_, "bitset universe mismatch");
  uint64_t* a = words_.data();
  const uint64_t* b = other.words_.data();
  for (std::size_t i = 0; i < words_.size(); ++i) a[i] &= ~b[i];
}

std::vector<int> DynBitset::to_indices() const {
  std::vector<int> out;
  out.reserve(static_cast<std::size_t>(count()));
  for_each([&out](int i) { out.push_back(i); });
  return out;
}

}  // namespace wmcast::util
