// Fixed-size worker pool for the deterministic parallel execution layer.
//
// Design rules (DESIGN.md §9):
//
//  * `threads == 1` is the reference semantics: no worker threads are
//    spawned, submit() and parallel_for() execute inline on the calling
//    thread, and behavior is byte-identical to a build without the pool.
//  * parallel_for uses *static* chunking — [begin, end) is split into at
//    most size() contiguous chunks whose boundaries depend only on the range
//    length and the pool size, never on runtime timing. The chunk index is
//    passed to the body as a `lane` id so callers can give each chunk its own
//    scratch (one workspace per lane, not per OS thread).
//  * exceptions thrown by tasks are captured and rethrown to the caller:
//    submit() through the returned future, parallel_for() directly — when
//    several chunks throw, the lowest chunk's exception wins, so error
//    reporting is deterministic too.
//
// Thread-count resolution (resolve_threads): an explicit request >= 1 wins,
// else the WMCAST_THREADS environment variable, else 1. Every binary resolves
// `--threads` through this single path.
#pragma once

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <future>
#include <mutex>
#include <thread>
#include <vector>

namespace wmcast::util {

class ThreadPool {
 public:
  /// threads <= 0 resolves via resolve_threads(0) (env override, else 1).
  explicit ThreadPool(int threads = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Number of execution lanes (>= 1). 1 = inline serial execution.
  int size() const { return size_; }

  /// Enqueues one task; the future carries any exception it throws. With
  /// size() == 1 the task runs inline before submit returns.
  std::future<void> submit(std::function<void()> fn);

  /// Runs body(chunk_begin, chunk_end, lane) over a static partition of
  /// [begin, end) into min(size(), end - begin) contiguous chunks. Lane k
  /// handles the k-th chunk; chunk 0 runs on the calling thread. Blocks until
  /// every chunk finished; rethrows the lowest-lane exception, if any.
  /// Empty ranges are a no-op. Must not be called from inside a pool task
  /// (nested calls degrade to inline serial execution to avoid deadlock).
  void parallel_for(int64_t begin, int64_t end,
                    const std::function<void(int64_t, int64_t, int)>& body);

  /// std::thread::hardware_concurrency(), clamped to >= 1.
  static int hardware_threads();
  /// WMCAST_THREADS as a positive int, or 0 when unset/invalid.
  static int env_threads();
  /// requested >= 1 -> requested; else WMCAST_THREADS if set; else 1.
  static int resolve_threads(int requested);

 private:
  void worker_loop();

  int size_ = 1;
  std::vector<std::thread> workers_;
  std::deque<std::function<void()>> queue_;
  std::mutex mu_;
  std::condition_variable cv_;
  bool stop_ = false;
};

}  // namespace wmcast::util
