#include "wmcast/util/stats.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <stdexcept>

#include "wmcast/util/assert.hpp"

namespace wmcast::util {

void RunningStat::add(double x) {
  if (n_ == 0) {
    min_ = x;
    max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++n_;
  const double delta = x - mean_;
  mean_ += delta / n_;
  m2_ += delta * (x - mean_);
}

double RunningStat::mean() const { return n_ > 0 ? mean_ : 0.0; }

double RunningStat::variance() const { return n_ > 1 ? m2_ / (n_ - 1) : 0.0; }

double RunningStat::stddev() const { return std::sqrt(variance()); }

double RunningStat::min() const { return min_; }

double RunningStat::max() const { return max_; }

Summary summarize(const RunningStat& s) {
  return Summary{s.min(), s.mean(), s.max(), s.stddev(), s.count()};
}

Summary summarize(const std::vector<double>& samples) {
  RunningStat s;
  for (const double x : samples) s.add(x);
  return summarize(s);
}

double percentile(std::vector<double> samples, double p) {
  if (samples.empty()) {
    throw std::invalid_argument("percentile: empty sample set");
  }
  if (!(p >= 0.0 && p <= 100.0)) {
    throw std::invalid_argument("percentile: p must be in [0, 100], got " + fmt(p));
  }
  std::sort(samples.begin(), samples.end());
  const double rank = p / 100.0 * static_cast<double>(samples.size() - 1);
  const auto lo = static_cast<size_t>(rank);
  if (lo + 1 >= samples.size()) return samples.back();
  const double frac = rank - static_cast<double>(lo);
  return samples[lo] + frac * (samples[lo + 1] - samples[lo]);
}

double percent_reduction(double ours, double baseline) {
  if (baseline == 0.0) return 0.0;
  return 100.0 * (baseline - ours) / baseline;
}

double percent_gain(double ours, double baseline) {
  if (baseline == 0.0) return 0.0;
  return 100.0 * (ours - baseline) / baseline;
}

std::string fmt(double x, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", precision, x);
  return buf;
}

}  // namespace wmcast::util
