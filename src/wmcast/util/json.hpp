// Minimal JSON value: an ordered builder for machine-readable experiment and
// telemetry output, plus a strict parser so emitted documents can be
// validated in tests and benches without external dependencies.
//
// Scope is deliberately small: objects keep insertion order, numbers are
// int64 or double, no comments, no trailing commas, UTF-8 passed through
// byte-wise (only control characters and quotes/backslashes are escaped).
#pragma once

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

namespace wmcast::util {

class Json {
 public:
  enum class Kind { kNull, kBool, kInt, kDouble, kString, kArray, kObject };

  Json() : kind_(Kind::kNull) {}
  Json(bool v) : kind_(Kind::kBool), bool_(v) {}
  Json(int v) : kind_(Kind::kInt), int_(v) {}
  Json(int64_t v) : kind_(Kind::kInt), int_(v) {}
  Json(double v) : kind_(Kind::kDouble), double_(v) {}
  Json(const char* v) : kind_(Kind::kString), string_(v) {}
  Json(std::string v) : kind_(Kind::kString), string_(std::move(v)) {}

  static Json object() { Json j; j.kind_ = Kind::kObject; return j; }
  static Json array() { Json j; j.kind_ = Kind::kArray; return j; }

  Kind kind() const { return kind_; }
  bool is_object() const { return kind_ == Kind::kObject; }
  bool is_array() const { return kind_ == Kind::kArray; }
  bool is_number() const { return kind_ == Kind::kInt || kind_ == Kind::kDouble; }
  bool is_string() const { return kind_ == Kind::kString; }

  /// Object: appends (or overwrites) a key. Requires an object.
  Json& set(const std::string& key, Json value);
  /// Array: appends an element. Requires an array.
  Json& push(Json value);

  /// Object lookup; nullptr when absent or not an object.
  const Json* find(const std::string& key) const;

  /// Accessors (return the natural zero value on kind mismatch).
  bool as_bool() const { return kind_ == Kind::kBool && bool_; }
  int64_t as_int() const;
  double as_double() const;
  const std::string& as_string() const { return string_; }
  const std::vector<Json>& items() const { return array_; }
  const std::vector<std::pair<std::string, Json>>& members() const { return object_; }
  size_t size() const;

  /// Serializes. indent > 0 pretty-prints with that many spaces per level.
  std::string dump(int indent = 0) const;

  /// Strict parse; throws std::invalid_argument with position info on error.
  static Json parse(const std::string& text);

 private:
  void dump_to(std::string& out, int indent, int depth) const;

  Kind kind_;
  bool bool_ = false;
  int64_t int_ = 0;
  double double_ = 0.0;
  std::string string_;
  std::vector<Json> array_;
  std::vector<std::pair<std::string, Json>> object_;
};

/// Escapes a string for embedding in a JSON document (no surrounding quotes).
std::string json_escape(const std::string& s);

}  // namespace wmcast::util
