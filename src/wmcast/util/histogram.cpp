#include "wmcast/util/histogram.hpp"

#include <algorithm>
#include <sstream>

#include "wmcast/util/assert.hpp"

namespace wmcast::util {

std::string render_histogram(const std::vector<std::string>& labels,
                             const std::vector<int>& counts, int width) {
  require(labels.size() == counts.size(), "render_histogram: labels/counts mismatch");
  require(width >= 1, "render_histogram: width must be positive");

  int max_count = 0;
  size_t label_width = 0;
  for (size_t i = 0; i < counts.size(); ++i) {
    require(counts[i] >= 0, "render_histogram: negative count");
    max_count = std::max(max_count, counts[i]);
    label_width = std::max(label_width, labels[i].size());
  }

  std::ostringstream out;
  for (size_t i = 0; i < counts.size(); ++i) {
    out << labels[i] << std::string(label_width - labels[i].size(), ' ') << " | ";
    const int bar =
        max_count > 0 ? (counts[i] * width + max_count - 1) / max_count : 0;
    if (counts[i] > 0) out << std::string(static_cast<size_t>(std::max(bar, 1)), '#') << ' ';
    out << counts[i] << '\n';
  }
  return out.str();
}

std::string render_indexed_histogram(const std::vector<int>& counts, int width) {
  std::vector<std::string> labels(counts.size());
  for (size_t i = 0; i < counts.size(); ++i) {
    labels[i] = (i + 1 == counts.size() && counts.size() > 1)
                    ? ">=" + std::to_string(i)
                    : std::to_string(i);
  }
  return render_histogram(labels, counts, width);
}

}  // namespace wmcast::util
