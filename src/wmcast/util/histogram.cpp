#include "wmcast/util/histogram.hpp"

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <cstdio>
#include <limits>
#include <sstream>

#include "wmcast/util/assert.hpp"
#include "wmcast/util/stats.hpp"

namespace wmcast::util {

Histogram::Histogram(std::vector<double> upper_bounds)
    : bounds_(std::move(upper_bounds)),
      counts_(bounds_.size() + 1, 0) {
  require(!bounds_.empty(), "Histogram: need at least one bound");
  for (size_t i = 1; i < bounds_.size(); ++i) {
    require(bounds_[i] > bounds_[i - 1], "Histogram: bounds must be strictly ascending");
  }
}

Histogram Histogram::exponential(double start, double factor, int n) {
  require(start > 0.0 && factor > 1.0 && n > 0, "Histogram: bad exponential ladder");
  std::vector<double> bounds(static_cast<size_t>(n));
  double b = start;
  for (int i = 0; i < n; ++i) {
    bounds[static_cast<size_t>(i)] = b;
    b *= factor;
  }
  return Histogram(std::move(bounds));
}

void Histogram::record(double v) {
  // NaN has unordered comparisons: it would land in an arbitrary bucket via
  // lower_bound and then poison min_/max_/sum_ (and every derived quantile)
  // irreversibly. Telemetry producers must filter or fix their samples.
  require(!std::isnan(v), "Histogram: cannot record NaN");
  const auto it = std::lower_bound(bounds_.begin(), bounds_.end(), v);
  counts_[static_cast<size_t>(it - bounds_.begin())] += 1;
  if (count_ == 0) {
    min_ = max_ = v;
  } else {
    min_ = std::min(min_, v);
    max_ = std::max(max_, v);
  }
  ++count_;
  sum_ += v;
}

double Histogram::quantile(double q) const {
  if (count_ == 0) return std::numeric_limits<double>::quiet_NaN();
  if (count_ == 1) return max_;  // the one sample, not its bucket bound
  if (q <= 0.0) return min_;
  if (q >= 1.0) return max_;
  // Continuous rank in [0, count-1]; the samples of the containing bucket
  // occupy ranks [seen, seen + c - 1] and are assumed evenly spread over the
  // bucket span, which is clamped to the exactly tracked [min, max].
  const double rank = q * static_cast<double>(count_ - 1);
  uint64_t seen = 0;
  for (size_t i = 0; i < counts_.size(); ++i) {
    const uint64_t c = counts_[i];
    if (c == 0) continue;
    if (rank < static_cast<double>(seen + c)) {
      const double lo =
          i == 0 ? min_ : std::max(min_, bounds_[i - 1]);
      const double hi = i < bounds_.size() ? std::min(max_, bounds_[i]) : max_;
      if (hi <= lo) return lo;
      const double frac =
          c > 1 ? std::clamp((rank - static_cast<double>(seen)) /
                                 static_cast<double>(c - 1),
                             0.0, 1.0)
                : 0.5;
      return lo + (hi - lo) * frac;
    }
    seen += c;
  }
  return max_;
}

std::string Histogram::render(int width) const {
  std::vector<std::string> labels;
  std::vector<int> ints;
  char buf[48];
  for (size_t i = 0; i < counts_.size(); ++i) {
    if (i < bounds_.size()) {
      std::snprintf(buf, sizeof(buf), "<=%s", fmt(bounds_[i], 6).c_str());
    } else {
      std::snprintf(buf, sizeof(buf), ">%s", fmt(bounds_.back(), 6).c_str());
    }
    labels.emplace_back(buf);
    ints.push_back(static_cast<int>(std::min<uint64_t>(
        counts_[i], static_cast<uint64_t>(std::numeric_limits<int>::max()))));
  }
  return render_histogram(labels, ints, width);
}

Json Histogram::to_json() const {
  Json bounds = Json::array();
  for (const double b : bounds_) bounds.push(b);
  Json counts = Json::array();
  for (const uint64_t c : counts_) counts.push(static_cast<int64_t>(c));
  Json j = Json::object();
  j.set("upper_bounds", std::move(bounds));
  j.set("counts", std::move(counts));
  j.set("count", static_cast<int64_t>(count_));
  j.set("sum", sum_);
  j.set("min", min_value());
  j.set("max", max_value());
  j.set("mean", mean());
  j.set("p50", count_ == 0 ? 0.0 : quantile(0.5));
  j.set("p99", count_ == 0 ? 0.0 : quantile(0.99));
  j.set("p999", count_ == 0 ? 0.0 : quantile(0.999));
  return j;
}

std::string render_histogram(const std::vector<std::string>& labels,
                             const std::vector<int>& counts, int width) {
  require(labels.size() == counts.size(), "render_histogram: labels/counts mismatch");
  require(width >= 1, "render_histogram: width must be positive");

  int max_count = 0;
  size_t label_width = 0;
  for (size_t i = 0; i < counts.size(); ++i) {
    require(counts[i] >= 0, "render_histogram: negative count");
    max_count = std::max(max_count, counts[i]);
    label_width = std::max(label_width, labels[i].size());
  }

  std::ostringstream out;
  for (size_t i = 0; i < counts.size(); ++i) {
    out << labels[i] << std::string(label_width - labels[i].size(), ' ') << " | ";
    // 64-bit: counts[i] * width overflows int for counts near INT_MAX
    // (Histogram::render clamps counts to INT_MAX, so they get that large).
    const int bar =
        max_count > 0
            ? static_cast<int>((static_cast<int64_t>(counts[i]) * width +
                                max_count - 1) /
                               max_count)
            : 0;
    if (counts[i] > 0) out << std::string(static_cast<size_t>(std::max(bar, 1)), '#') << ' ';
    out << counts[i] << '\n';
  }
  return out.str();
}

std::string render_indexed_histogram(const std::vector<int>& counts, int width) {
  std::vector<std::string> labels(counts.size());
  for (size_t i = 0; i < counts.size(); ++i) {
    labels[i] = (i + 1 == counts.size() && counts.size() > 1)
                    ? ">=" + std::to_string(i)
                    : std::to_string(i);
  }
  return render_histogram(labels, counts, width);
}

}  // namespace wmcast::util
