#include "wmcast/util/cli.hpp"

#include <stdexcept>

#include "wmcast/util/assert.hpp"
#include "wmcast/util/thread_pool.hpp"

namespace wmcast::util {

Args::Args(int argc, char** argv) {
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg.rfind("--", 0) != 0) {
      throw std::invalid_argument("unrecognized argument (expected --key=value): " + arg);
    }
    const auto eq = arg.find('=');
    if (eq == std::string::npos) {
      kv_[arg.substr(2)] = "true";
    } else {
      kv_[arg.substr(2, eq - 2)] = arg.substr(eq + 1);
    }
  }
}

bool Args::has(const std::string& key) const { return kv_.count(key) > 0; }

std::string Args::get(const std::string& key, const std::string& def) const {
  const auto it = kv_.find(key);
  return it == kv_.end() ? def : it->second;
}

int Args::get_int(const std::string& key, int def) const {
  const auto it = kv_.find(key);
  return it == kv_.end() ? def : std::stoi(it->second);
}

double Args::get_double(const std::string& key, double def) const {
  const auto it = kv_.find(key);
  return it == kv_.end() ? def : std::stod(it->second);
}

uint64_t Args::get_u64(const std::string& key, uint64_t def) const {
  const auto it = kv_.find(key);
  return it == kv_.end() ? def : std::stoull(it->second);
}

bool Args::get_bool(const std::string& key, bool def) const {
  const auto it = kv_.find(key);
  if (it == kv_.end()) return def;
  return it->second == "true" || it->second == "1" || it->second == "yes";
}

int resolve_threads(const Args& args) {
  return ThreadPool::resolve_threads(args.get_int("threads", 0));
}

}  // namespace wmcast::util
