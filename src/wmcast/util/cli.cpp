#include "wmcast/util/cli.hpp"

#include <algorithm>
#include <stdexcept>

#include "wmcast/util/assert.hpp"
#include "wmcast/util/simd.hpp"
#include "wmcast/util/thread_pool.hpp"

namespace wmcast::util {

namespace {

[[noreturn]] void bad_value(const std::string& key, const std::string& value,
                            const char* type, const char* why) {
  throw std::invalid_argument("--" + key + "=" + value + ": " + why + " (expected " +
                              type + ")");
}

// stoi/stod/stoull accept a valid prefix and stop; a CLI value must parse in
// full, so "12x" and "" are errors, annotated with the flag they came from.
template <typename T, typename Fn>
T parse_full(const std::string& key, const std::string& value, const char* type,
             Fn parse) {
  size_t pos = 0;
  T out;
  try {
    out = parse(value, &pos);
  } catch (const std::invalid_argument&) {
    bad_value(key, value, type, "not a number");
  } catch (const std::out_of_range&) {
    bad_value(key, value, type, "out of range");
  }
  if (pos != value.size()) bad_value(key, value, type, "trailing characters");
  return out;
}

}  // namespace

Args::Args(int argc, char** argv) {
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg.rfind("--", 0) != 0) {
      throw std::invalid_argument("unrecognized argument (expected --key=value): " + arg);
    }
    const auto eq = arg.find('=');
    const std::string key =
        eq == std::string::npos ? arg.substr(2) : arg.substr(2, eq - 2);
    if (key.empty()) {
      throw std::invalid_argument("empty flag name: " + arg);
    }
    kv_[key] = eq == std::string::npos ? "true" : arg.substr(eq + 1);
  }
}

bool Args::has(const std::string& key) const { return kv_.count(key) > 0; }

std::string Args::get(const std::string& key, const std::string& def) const {
  const auto it = kv_.find(key);
  return it == kv_.end() ? def : it->second;
}

int Args::get_int(const std::string& key, int def) const {
  const auto it = kv_.find(key);
  if (it == kv_.end()) return def;
  return parse_full<int>(key, it->second, "an integer",
                         [](const std::string& v, size_t* p) { return std::stoi(v, p); });
}

double Args::get_double(const std::string& key, double def) const {
  const auto it = kv_.find(key);
  if (it == kv_.end()) return def;
  return parse_full<double>(key, it->second, "a number",
                            [](const std::string& v, size_t* p) { return std::stod(v, p); });
}

uint64_t Args::get_u64(const std::string& key, uint64_t def) const {
  const auto it = kv_.find(key);
  if (it == kv_.end()) return def;
  // stoull happily wraps "-1" to 2^64-1; reject any sign explicitly.
  if (!it->second.empty() && (it->second[0] == '-' || it->second[0] == '+')) {
    bad_value(key, it->second, "an unsigned integer", "sign not allowed");
  }
  return parse_full<uint64_t>(
      key, it->second, "an unsigned integer",
      [](const std::string& v, size_t* p) { return std::stoull(v, p); });
}

bool Args::get_bool(const std::string& key, bool def) const {
  const auto it = kv_.find(key);
  if (it == kv_.end()) return def;
  return it->second == "true" || it->second == "1" || it->second == "yes";
}

void Args::reject_unknown(std::initializer_list<std::string_view> known) const {
  std::string bad;
  for (const auto& [key, value] : kv_) {
    if (std::find(known.begin(), known.end(), key) == known.end()) {
      if (!bad.empty()) bad += ", ";
      bad += "--" + key;
    }
  }
  if (!bad.empty()) {
    throw std::invalid_argument("unknown flag(s): " + bad);
  }
}

int resolve_threads(const Args& args) {
  return ThreadPool::resolve_threads(args.get_int("threads", 0));
}

void resolve_simd(const Args& args) {
  simd::set_mode(simd::mode_from_name(args.get("simd", "auto")));
}

}  // namespace wmcast::util
