// Streaming statistics for experiment aggregation. The paper reports the
// average, min and max over 40 random scenarios per data point; Summary is
// exactly that triple (plus stddev, which EXPERIMENTS.md records as well).
#pragma once

#include <string>
#include <vector>

namespace wmcast::util {

/// Welford streaming accumulator: numerically stable mean/variance plus
/// min/max, without storing the samples.
class RunningStat {
 public:
  void add(double x);

  int count() const { return n_; }
  double mean() const;
  /// Sample variance (n-1 denominator); 0 when fewer than two samples.
  double variance() const;
  double stddev() const;
  double min() const;
  double max() const;

 private:
  int n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

/// The (min, avg, max) triple the paper's error bars show.
struct Summary {
  double min = 0.0;
  double avg = 0.0;
  double max = 0.0;
  double stddev = 0.0;
  int count = 0;
};

Summary summarize(const RunningStat& s);
Summary summarize(const std::vector<double>& samples);

/// Exact p-th percentile (p in [0, 100]) of `samples` with linear
/// interpolation between order statistics (the common "linear"/R-7 rule).
/// Contract: throws std::invalid_argument on an empty sample set or p outside
/// [0, 100] — it never returns NaN or reads out of bounds. A single sample is
/// every percentile of itself.
double percentile(std::vector<double> samples, double p);

/// Relative improvement of `ours` vs `baseline` in percent, where smaller is
/// better: 100*(baseline-ours)/baseline. Returns 0 if baseline is 0.
double percent_reduction(double ours, double baseline);

/// Relative improvement where larger is better: 100*(ours-baseline)/baseline.
double percent_gain(double ours, double baseline);

/// Formats a double with fixed precision (helper for tables/logs).
std::string fmt(double x, int precision = 3);

}  // namespace wmcast::util
