#include "wmcast/util/table.hpp"

#include <algorithm>
#include <cstdio>
#include <sstream>

#include "wmcast/util/assert.hpp"

namespace wmcast::util {

Table::Table(std::vector<std::string> headers) : headers_(std::move(headers)) {}

void Table::add_row(std::vector<std::string> cells) {
  WMCAST_ASSERT(cells.size() == headers_.size(), "row width != header width");
  rows_.push_back(std::move(cells));
}

std::string Table::to_string() const {
  std::vector<size_t> width(headers_.size());
  for (size_t c = 0; c < headers_.size(); ++c) width[c] = headers_[c].size();
  for (const auto& row : rows_) {
    for (size_t c = 0; c < row.size(); ++c) width[c] = std::max(width[c], row[c].size());
  }

  std::ostringstream out;
  auto emit_row = [&](const std::vector<std::string>& row) {
    for (size_t c = 0; c < row.size(); ++c) {
      out << (c == 0 ? "" : "  ");
      out << row[c];
      out << std::string(width[c] - row[c].size(), ' ');
    }
    out << '\n';
  };
  emit_row(headers_);
  size_t total = headers_.empty() ? 0 : 2 * (headers_.size() - 1);
  for (const auto w : width) total += w;
  out << std::string(total, '-') << '\n';
  for (const auto& row : rows_) emit_row(row);
  return out.str();
}

std::string Table::to_csv() const {
  std::ostringstream out;
  auto emit = [&](const std::vector<std::string>& row) {
    for (size_t c = 0; c < row.size(); ++c) {
      if (c > 0) out << ',';
      out << row[c];
    }
    out << '\n';
  };
  emit(headers_);
  for (const auto& row : rows_) emit(row);
  return out.str();
}

void Table::print() const { std::fputs(to_string().c_str(), stdout); }

bool Table::write_csv(const std::string& path) const {
  std::ofstream f(path);
  if (!f) {
    std::fprintf(stderr, "wmcast: cannot open %s for writing\n", path.c_str());
    return false;
  }
  f << to_csv();
  return static_cast<bool>(f);
}

}  // namespace wmcast::util
