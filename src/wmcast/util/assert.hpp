// Lightweight contract checking used across the library.
//
// WMCAST_ASSERT(cond, msg): internal invariant; aborts with location info.
// util::require(cond, msg):  precondition on public API input; throws
//                            std::invalid_argument so callers can recover.
#pragma once

#include <cstdio>
#include <cstdlib>
#include <stdexcept>
#include <string>

namespace wmcast::util {

[[noreturn]] inline void assert_fail(const char* expr, const char* file, int line,
                                     const char* msg) {
  std::fprintf(stderr, "wmcast: assertion `%s` failed at %s:%d: %s\n", expr, file,
               line, msg);
  std::abort();
}

/// Throws std::invalid_argument when a documented precondition is violated.
inline void require(bool cond, const std::string& msg) {
  if (!cond) throw std::invalid_argument("wmcast: " + msg);
}

}  // namespace wmcast::util

#define WMCAST_ASSERT(cond, msg)                                         \
  do {                                                                   \
    if (!(cond)) ::wmcast::util::assert_fail(#cond, __FILE__, __LINE__, msg); \
  } while (0)
