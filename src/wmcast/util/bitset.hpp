// Dynamic bitset tuned for the set-cover kernels: the hot operations are
// popcount of an intersection (|S ∩ X'|) and in-place and/or/andnot updates.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

namespace wmcast::util {

/// Fixed-universe dynamic bitset. All binary operations require both operands
/// to share the same universe size (checked with assertions).
class DynBitset {
 public:
  DynBitset() = default;
  explicit DynBitset(int n_bits);

  int size() const { return n_bits_; }

  void set(int i);
  void reset(int i);
  bool test(int i) const;

  void set_all();
  void reset_all();

  /// Number of set bits.
  int count() const;
  bool any() const;
  bool none() const { return !any(); }

  /// popcount(*this & other) without materializing the intersection.
  int and_count(const DynBitset& other) const;
  /// popcount(*this & ~other) without materializing the difference.
  int andnot_count(const DynBitset& other) const;
  /// True iff (*this & other) is nonempty.
  bool intersects(const DynBitset& other) const;
  /// True iff every set bit of *this is also set in other.
  bool is_subset_of(const DynBitset& other) const;

  /// Grows (or shrinks) the universe to n_bits; surviving bits keep their
  /// values, new bits start clear.
  void resize(int n_bits);

  void or_assign(const DynBitset& other);
  void and_assign(const DynBitset& other);
  /// *this &= ~other.
  void andnot_assign(const DynBitset& other);

  bool operator==(const DynBitset& other) const = default;

  /// Indices of set bits in increasing order.
  std::vector<int> to_indices() const;

  /// Calls fn(i) for every set bit i in increasing order.
  template <typename Fn>
  void for_each(Fn&& fn) const {
    for (size_t w = 0; w < words_.size(); ++w) {
      uint64_t bits = words_[w];
      while (bits != 0) {
        const int b = __builtin_ctzll(bits);
        fn(static_cast<int>(w * 64) + b);
        bits &= bits - 1;
      }
    }
  }

  /// Calls fn(i) for every bit set in (*this & other), in increasing order,
  /// without materializing the intersection.
  template <typename Fn>
  void for_each_and(const DynBitset& other, Fn&& fn) const {
    for (size_t w = 0; w < words_.size(); ++w) {
      uint64_t bits = words_[w] & other.words_[w];
      while (bits != 0) {
        const int b = __builtin_ctzll(bits);
        fn(static_cast<int>(w * 64) + b);
        bits &= bits - 1;
      }
    }
  }

  /// Calls fn(i) for every bit set in (*this & ~other), in increasing order,
  /// without materializing the difference.
  template <typename Fn>
  void for_each_andnot(const DynBitset& other, Fn&& fn) const {
    for (size_t w = 0; w < words_.size(); ++w) {
      uint64_t bits = words_[w] & ~other.words_[w];
      while (bits != 0) {
        const int b = __builtin_ctzll(bits);
        fn(static_cast<int>(w * 64) + b);
        bits &= bits - 1;
      }
    }
  }

 private:
  int n_bits_ = 0;
  std::vector<uint64_t> words_;
};

}  // namespace wmcast::util
