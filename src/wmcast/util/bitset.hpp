// Dynamic bitset tuned for the set-cover kernels: the hot operations are
// popcount of an intersection (|S ∩ X'|) and in-place and/or/andnot updates.
// Count kernels dispatch through wmcast::simd (unrolled word-parallel scalar
// or AVX2, selected at runtime, bit-identical by construction); the visitor
// templates skip zero words four at a time so sparse sets cost loads, not
// per-bit branches. Word storage is arena-capable: a DynBitset constructed
// with an ArenaAllocator allocates from its shard's arena (see util/arena.hpp
// for the ownership rules); the default is the plain heap.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "wmcast/util/arena.hpp"
#include "wmcast/util/simd.hpp"

namespace wmcast::util {

/// Fixed-universe dynamic bitset. All binary operations require both operands
/// to share the same universe size (checked with assertions).
class DynBitset {
 public:
  DynBitset() = default;
  explicit DynBitset(int n_bits);
  /// Arena-backed storage: words allocate through `alloc` (heap when its
  /// arena is null). Copy construction intentionally falls back to the heap.
  DynBitset(int n_bits, ArenaAllocator<uint64_t> alloc);

  int size() const { return n_bits_; }

  void set(int i);
  void reset(int i);
  bool test(int i) const;
  /// Clears bit i and returns its previous value (one word access — the
  /// solvers' commit loop fuses its test+reset pair through this).
  bool test_and_reset(int i);

  void set_all();
  void reset_all();

  /// Number of set bits.
  int count() const;
  bool any() const;
  bool none() const { return !any(); }

  /// popcount(*this & other) without materializing the intersection.
  int and_count(const DynBitset& other) const;
  /// popcount(*this & ~other) without materializing the difference.
  int andnot_count(const DynBitset& other) const;
  /// True iff (*this & other) is nonempty.
  bool intersects(const DynBitset& other) const;
  /// True iff every set bit of *this is also set in other.
  bool is_subset_of(const DynBitset& other) const;

  /// Grows (or shrinks) the universe to n_bits; surviving bits keep their
  /// values, new bits start clear.
  void resize(int n_bits);

  void or_assign(const DynBitset& other);
  void and_assign(const DynBitset& other);
  /// *this &= ~other.
  void andnot_assign(const DynBitset& other);

  bool operator==(const DynBitset& other) const {
    return n_bits_ == other.n_bits_ && words_ == other.words_;
  }

  /// Indices of set bits in increasing order.
  std::vector<int> to_indices() const;

  /// Raw word storage (ceil(size/64) words, trailing bits clear). For the
  /// engine's fused kernels; never exposes writable access.
  const uint64_t* words() const { return words_.data(); }
  std::size_t word_count() const { return words_.size(); }

  /// Calls fn(i) for every set bit i in increasing order.
  template <typename Fn>
  void for_each(Fn&& fn) const {
    const uint64_t* w = words_.data();
    const std::size_t n = words_.size();
    std::size_t i = 0;
    // Blocks of four words: one OR + branch skips 256 empty bits at a time.
    for (; i + 4 <= n; i += 4) {
      if ((w[i] | w[i + 1] | w[i + 2] | w[i + 3]) == 0) continue;
      visit_word(w[i], static_cast<int>(i * 64), fn);
      visit_word(w[i + 1], static_cast<int>((i + 1) * 64), fn);
      visit_word(w[i + 2], static_cast<int>((i + 2) * 64), fn);
      visit_word(w[i + 3], static_cast<int>((i + 3) * 64), fn);
    }
    for (; i < n; ++i) visit_word(w[i], static_cast<int>(i * 64), fn);
  }

  /// Calls fn(i) for every bit set in (*this & other), in increasing order,
  /// without materializing the intersection.
  template <typename Fn>
  void for_each_and(const DynBitset& other, Fn&& fn) const {
    const uint64_t* a = words_.data();
    const uint64_t* b = other.words_.data();
    const std::size_t n = words_.size();
    std::size_t i = 0;
    for (; i + 4 <= n; i += 4) {
      const uint64_t w0 = a[i] & b[i];
      const uint64_t w1 = a[i + 1] & b[i + 1];
      const uint64_t w2 = a[i + 2] & b[i + 2];
      const uint64_t w3 = a[i + 3] & b[i + 3];
      if ((w0 | w1 | w2 | w3) == 0) continue;
      visit_word(w0, static_cast<int>(i * 64), fn);
      visit_word(w1, static_cast<int>((i + 1) * 64), fn);
      visit_word(w2, static_cast<int>((i + 2) * 64), fn);
      visit_word(w3, static_cast<int>((i + 3) * 64), fn);
    }
    for (; i < n; ++i) visit_word(a[i] & b[i], static_cast<int>(i * 64), fn);
  }

  /// Calls fn(i) for every bit set in (*this & ~other), in increasing order,
  /// without materializing the difference.
  template <typename Fn>
  void for_each_andnot(const DynBitset& other, Fn&& fn) const {
    const uint64_t* a = words_.data();
    const uint64_t* b = other.words_.data();
    const std::size_t n = words_.size();
    std::size_t i = 0;
    for (; i + 4 <= n; i += 4) {
      const uint64_t w0 = a[i] & ~b[i];
      const uint64_t w1 = a[i + 1] & ~b[i + 1];
      const uint64_t w2 = a[i + 2] & ~b[i + 2];
      const uint64_t w3 = a[i + 3] & ~b[i + 3];
      if ((w0 | w1 | w2 | w3) == 0) continue;
      visit_word(w0, static_cast<int>(i * 64), fn);
      visit_word(w1, static_cast<int>((i + 1) * 64), fn);
      visit_word(w2, static_cast<int>((i + 2) * 64), fn);
      visit_word(w3, static_cast<int>((i + 3) * 64), fn);
    }
    for (; i < n; ++i) visit_word(a[i] & ~b[i], static_cast<int>(i * 64), fn);
  }

 private:
  template <typename Fn>
  static void visit_word(uint64_t bits, int base, Fn&& fn) {
    while (bits != 0) {
      fn(base + __builtin_ctzll(bits));
      bits &= bits - 1;
    }
  }

  int n_bits_ = 0;
  ArenaVector<uint64_t> words_;
};

}  // namespace wmcast::util
