// The one floating-point feasibility policy for budget/load comparisons.
//
// Every layer that checks an accumulated load against a budget — the engine
// solvers (core/solve), their eager references (setcover/reference), the
// association heuristics (assoc/*), the controller's admission/peel paths
// (ctrl/controller) and the load report (wlan/association) — must agree on
// what "fits" means, or a budget exactly equal to a load sum flips between
// feasible and infeasible depending on which module (and which platform's
// rounding) looks at it. Historically the solvers used an absolute 1e-12 and
// the association layer an absolute 1e-9; an accumulated sum of large costs
// (say, per-AP loads in the hundreds) carries rounding noise above 1e-12, so
// the same instance could be feasible to assoc/ and infeasible to core/.
//
// The shared tolerance is relative-plus-absolute: 1e-9 scaled by
// max(1, |budget|). At the paper's unit budgets it is numerically identical
// to the old association-layer behavior; at large magnitudes it absorbs the
// accumulation noise a fixed absolute epsilon cannot.
#pragma once

#include <cmath>

namespace wmcast::util {

inline constexpr double kBudgetEps = 1e-9;

/// The comparison slack for a given budget magnitude.
inline double budget_tol(double budget) {
  return kBudgetEps * std::max(1.0, std::fabs(budget));
}

/// True iff an accumulated spend fits within `budget` (a sum exactly equal to
/// the budget is always feasible, regardless of accumulation order).
inline bool fits_budget(double spend, double budget) {
  return spend <= budget + budget_tol(budget);
}

/// True iff `spend` strictly exceeds `budget` beyond the shared tolerance —
/// the violation predicate, exactly !fits_budget.
inline bool exceeds_budget(double spend, double budget) {
  return !fits_budget(spend, budget);
}

/// True iff a group at `spend` has (numerically) reached `budget` and can
/// accept no further set (the MCG greedy's group-exhausted test).
inline bool budget_exhausted(double spend, double budget) {
  return spend >= budget - budget_tol(budget);
}

}  // namespace wmcast::util
