#include "wmcast/util/rng.hpp"

#include <numeric>

#include "wmcast/util/assert.hpp"

namespace wmcast::util {

namespace {

uint64_t splitmix64(uint64_t& x) {
  x += 0x9e3779b97f4a7c15ull;
  uint64_t z = x;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
  return z ^ (z >> 31);
}

uint64_t rotl(uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }

}  // namespace

Rng::Rng(uint64_t seed) {
  uint64_t sm = seed;
  for (auto& s : s_) s = splitmix64(sm);
}

uint64_t Rng::next_u64() {
  const uint64_t result = rotl(s_[1] * 5, 7) * 9;
  const uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = rotl(s_[3], 45);
  return result;
}

double Rng::next_double() {
  // 53 high bits -> uniform in [0,1).
  return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
}

double Rng::uniform(double lo, double hi) {
  WMCAST_ASSERT(lo <= hi, "uniform: empty interval");
  return lo + (hi - lo) * next_double();
}

int Rng::next_int(int n) {
  WMCAST_ASSERT(n > 0, "next_int: n must be positive");
  // Rejection-free multiply-shift (Lemire); bias is negligible for the n used
  // here (<= a few thousand), but do the strict unbiased variant anyway.
  const uint64_t bound = static_cast<uint64_t>(n);
  uint64_t x = next_u64();
  __uint128_t m = static_cast<__uint128_t>(x) * bound;
  auto lo = static_cast<uint64_t>(m);
  if (lo < bound) {
    const uint64_t threshold = -bound % bound;
    while (lo < threshold) {
      x = next_u64();
      m = static_cast<__uint128_t>(x) * bound;
      lo = static_cast<uint64_t>(m);
    }
  }
  return static_cast<int>(m >> 64);
}

int Rng::uniform_int(int lo, int hi) {
  WMCAST_ASSERT(lo <= hi, "uniform_int: empty range");
  return lo + next_int(hi - lo + 1);
}

bool Rng::next_bool(double p) { return next_double() < p; }

Rng Rng::fork() { return Rng(next_u64()); }

std::vector<int> iota_permutation(int n) {
  std::vector<int> v(static_cast<size_t>(n));
  std::iota(v.begin(), v.end(), 0);
  return v;
}

}  // namespace wmcast::util
