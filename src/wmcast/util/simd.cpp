#include "wmcast/util/simd.hpp"

#include <atomic>
#include <stdexcept>

#if defined(__x86_64__) || defined(__i386__)
#include <immintrin.h>
#define WMCAST_SIMD_X86 1
#else
#define WMCAST_SIMD_X86 0
#endif

namespace wmcast::simd {

namespace {

Caps detect() {
  Caps c;
#if WMCAST_SIMD_X86 && defined(__GNUC__)
  c.avx2 = __builtin_cpu_supports("avx2") != 0;
#endif
  return c;
}

std::atomic<int> g_mode{static_cast<int>(Mode::kAuto)};

}  // namespace

const Caps& caps() {
  static const Caps c = detect();
  return c;
}

void set_mode(Mode m) {
  if (m == Mode::kAvx2 && !caps().avx2) {
    throw std::invalid_argument("simd: --simd=avx2 requested but CPU lacks AVX2");
  }
  g_mode.store(static_cast<int>(m), std::memory_order_relaxed);
}

Mode mode() {
  return static_cast<Mode>(g_mode.load(std::memory_order_relaxed));
}

bool active_avx2() {
  const Mode m = mode();
  return m == Mode::kAvx2 || (m == Mode::kAuto && caps().avx2);
}

Mode mode_from_name(const std::string& name) {
  if (name == "auto") return Mode::kAuto;
  if (name == "scalar") return Mode::kScalar;
  if (name == "avx2") return Mode::kAvx2;
  throw std::invalid_argument("simd: unknown mode '" + name +
                              "' (expected auto|scalar|avx2)");
}

const char* mode_name(Mode m) {
  switch (m) {
    case Mode::kAuto: return "auto";
    case Mode::kScalar: return "scalar";
    case Mode::kAvx2: return "avx2";
  }
  return "?";
}

// ---------------------------------------------------------------------------
// Scalar kernels: 4x unrolled so the popcounts pipeline; exact integer sums,
// identical to the AVX2 path by construction.

int popcount_words_scalar(const uint64_t* w, std::size_t n) {
  std::size_t i = 0;
  int c0 = 0, c1 = 0, c2 = 0, c3 = 0;
  for (; i + 4 <= n; i += 4) {
    c0 += __builtin_popcountll(w[i]);
    c1 += __builtin_popcountll(w[i + 1]);
    c2 += __builtin_popcountll(w[i + 2]);
    c3 += __builtin_popcountll(w[i + 3]);
  }
  for (; i < n; ++i) c0 += __builtin_popcountll(w[i]);
  return c0 + c1 + c2 + c3;
}

int popcount_and_words_scalar(const uint64_t* a, const uint64_t* b,
                              std::size_t n) {
  std::size_t i = 0;
  int c0 = 0, c1 = 0, c2 = 0, c3 = 0;
  for (; i + 4 <= n; i += 4) {
    c0 += __builtin_popcountll(a[i] & b[i]);
    c1 += __builtin_popcountll(a[i + 1] & b[i + 1]);
    c2 += __builtin_popcountll(a[i + 2] & b[i + 2]);
    c3 += __builtin_popcountll(a[i + 3] & b[i + 3]);
  }
  for (; i < n; ++i) c0 += __builtin_popcountll(a[i] & b[i]);
  return c0 + c1 + c2 + c3;
}

int popcount_andnot_words_scalar(const uint64_t* a, const uint64_t* b,
                                 std::size_t n) {
  std::size_t i = 0;
  int c0 = 0, c1 = 0, c2 = 0, c3 = 0;
  for (; i + 4 <= n; i += 4) {
    c0 += __builtin_popcountll(a[i] & ~b[i]);
    c1 += __builtin_popcountll(a[i + 1] & ~b[i + 1]);
    c2 += __builtin_popcountll(a[i + 2] & ~b[i + 2]);
    c3 += __builtin_popcountll(a[i + 3] & ~b[i + 3]);
  }
  for (; i < n; ++i) c0 += __builtin_popcountll(a[i] & ~b[i]);
  return c0 + c1 + c2 + c3;
}

// ---------------------------------------------------------------------------
// AVX2 kernels: Mula nibble-lookup popcount (_mm256_shuffle_epi8 on the low
// and high nibbles, _mm256_sad_epu8 to widen to four u64 lanes), 32 bytes of
// input per step. Compiled with a target attribute so the rest of the TU —
// and the binary's baseline — stays generic x86-64; only reached when
// active_avx2() says the CPU has the instructions.

#if WMCAST_SIMD_X86 && defined(__GNUC__)

__attribute__((target("avx2"))) static inline __m256i popcount256(__m256i v) {
  const __m256i lookup =
      _mm256_setr_epi8(0, 1, 1, 2, 1, 2, 2, 3, 1, 2, 2, 3, 2, 3, 3, 4,
                       0, 1, 1, 2, 1, 2, 2, 3, 1, 2, 2, 3, 2, 3, 3, 4);
  const __m256i low_mask = _mm256_set1_epi8(0x0f);
  const __m256i lo = _mm256_and_si256(v, low_mask);
  const __m256i hi = _mm256_and_si256(_mm256_srli_epi32(v, 4), low_mask);
  const __m256i cnt = _mm256_add_epi8(_mm256_shuffle_epi8(lookup, lo),
                                      _mm256_shuffle_epi8(lookup, hi));
  return _mm256_sad_epu8(cnt, _mm256_setzero_si256());
}

__attribute__((target("avx2"))) static inline int hsum_epi64(__m256i acc) {
  const __m128i lo = _mm256_castsi256_si128(acc);
  const __m128i hi = _mm256_extracti128_si256(acc, 1);
  const __m128i s = _mm_add_epi64(lo, hi);
  return static_cast<int>(_mm_cvtsi128_si64(s) +
                          _mm_cvtsi128_si64(_mm_unpackhi_epi64(s, s)));
}

__attribute__((target("avx2"))) static int popcount_words_avx2(
    const uint64_t* w, std::size_t n) {
  __m256i acc = _mm256_setzero_si256();
  std::size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    const __m256i v =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(w + i));
    acc = _mm256_add_epi64(acc, popcount256(v));
  }
  int c = hsum_epi64(acc);
  for (; i < n; ++i) c += __builtin_popcountll(w[i]);
  return c;
}

__attribute__((target("avx2"))) static int popcount_and_words_avx2(
    const uint64_t* a, const uint64_t* b, std::size_t n) {
  __m256i acc = _mm256_setzero_si256();
  std::size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    const __m256i va =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(a + i));
    const __m256i vb =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(b + i));
    acc = _mm256_add_epi64(acc, popcount256(_mm256_and_si256(va, vb)));
  }
  int c = hsum_epi64(acc);
  for (; i < n; ++i) c += __builtin_popcountll(a[i] & b[i]);
  return c;
}

__attribute__((target("avx2"))) static int popcount_andnot_words_avx2(
    const uint64_t* a, const uint64_t* b, std::size_t n) {
  __m256i acc = _mm256_setzero_si256();
  std::size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    const __m256i va =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(a + i));
    const __m256i vb =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(b + i));
    // andnot(b, a) = a & ~b
    acc = _mm256_add_epi64(acc, popcount256(_mm256_andnot_si256(vb, va)));
  }
  int c = hsum_epi64(acc);
  for (; i < n; ++i) c += __builtin_popcountll(a[i] & ~b[i]);
  return c;
}

#endif  // WMCAST_SIMD_X86 && __GNUC__

int popcount_words(const uint64_t* w, std::size_t n) {
#if WMCAST_SIMD_X86 && defined(__GNUC__)
  if (n >= 8 && active_avx2()) return popcount_words_avx2(w, n);
#endif
  return popcount_words_scalar(w, n);
}

int popcount_and_words(const uint64_t* a, const uint64_t* b, std::size_t n) {
#if WMCAST_SIMD_X86 && defined(__GNUC__)
  if (n >= 8 && active_avx2()) return popcount_and_words_avx2(a, b, n);
#endif
  return popcount_and_words_scalar(a, b, n);
}

int popcount_andnot_words(const uint64_t* a, const uint64_t* b,
                          std::size_t n) {
#if WMCAST_SIMD_X86 && defined(__GNUC__)
  if (n >= 8 && active_avx2()) return popcount_andnot_words_avx2(a, b, n);
#endif
  return popcount_andnot_words_scalar(a, b, n);
}

}  // namespace wmcast::simd
