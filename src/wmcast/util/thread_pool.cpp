#include "wmcast/util/thread_pool.hpp"

#include <algorithm>
#include <cstdlib>
#include <stdexcept>

namespace wmcast::util {

namespace {

/// True while the current thread is executing a pool task; nested
/// parallel_for calls from a task run inline instead of re-entering the
/// queue (a worker waiting on its own queue would deadlock).
thread_local bool t_in_pool_task = false;

}  // namespace

int ThreadPool::hardware_threads() {
  const unsigned n = std::thread::hardware_concurrency();
  return n == 0 ? 1 : static_cast<int>(n);
}

int ThreadPool::env_threads() {
  const char* s = std::getenv("WMCAST_THREADS");
  if (s == nullptr || *s == '\0') return 0;
  char* end = nullptr;
  const long v = std::strtol(s, &end, 10);
  if (end == s || *end != '\0' || v < 1 || v > 4096) return 0;
  return static_cast<int>(v);
}

int ThreadPool::resolve_threads(int requested) {
  if (requested >= 1) return requested;
  const int env = env_threads();
  return env >= 1 ? env : 1;
}

ThreadPool::ThreadPool(int threads) : size_(resolve_threads(threads)) {
  // threads == 1 short-circuits to inline execution: no workers, no queue
  // traffic, byte-identical to code that never heard of the pool.
  if (size_ == 1) return;
  workers_.reserve(static_cast<size_t>(size_));
  for (int i = 0; i < size_; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lk(mu_);
    stop_ = true;
  }
  cv_.notify_all();
  // Drain: workers finish every queued task before exiting (tested).
  for (auto& w : workers_) w.join();
}

void ThreadPool::worker_loop() {
  t_in_pool_task = true;
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lk(mu_);
      cv_.wait(lk, [this] { return stop_ || !queue_.empty(); });
      if (queue_.empty()) return;  // stop_ set and nothing left to drain
      task = std::move(queue_.front());
      queue_.pop_front();
    }
    task();
  }
}

std::future<void> ThreadPool::submit(std::function<void()> fn) {
  auto task = std::make_shared<std::packaged_task<void()>>(std::move(fn));
  std::future<void> fut = task->get_future();
  if (size_ == 1 || t_in_pool_task) {
    (*task)();
    return fut;
  }
  {
    std::lock_guard<std::mutex> lk(mu_);
    if (stop_) throw std::runtime_error("ThreadPool::submit: pool is shutting down");
    queue_.emplace_back([task] { (*task)(); });
  }
  cv_.notify_one();
  return fut;
}

void ThreadPool::parallel_for(int64_t begin, int64_t end,
                              const std::function<void(int64_t, int64_t, int)>& body) {
  const int64_t len = end - begin;
  if (len <= 0) return;
  const int chunks =
      size_ == 1 || t_in_pool_task
          ? 1
          : static_cast<int>(std::min<int64_t>(len, static_cast<int64_t>(size_)));
  if (chunks == 1) {
    body(begin, end, 0);
    return;
  }

  // Static partition: chunk k covers base + (k < rem) elements, boundaries a
  // pure function of (len, chunks) so lane assignment is reproducible.
  const int64_t base = len / chunks;
  const int64_t rem = len % chunks;
  std::vector<int64_t> starts(static_cast<size_t>(chunks) + 1);
  starts[0] = begin;
  for (int k = 0; k < chunks; ++k) {
    starts[static_cast<size_t>(k) + 1] =
        starts[static_cast<size_t>(k)] + base + (k < rem ? 1 : 0);
  }

  std::vector<std::exception_ptr> errors(static_cast<size_t>(chunks));
  struct Latch {
    std::mutex mu;
    std::condition_variable cv;
    int remaining;
  } latch{{}, {}, chunks - 1};

  {
    std::lock_guard<std::mutex> lk(mu_);
    if (stop_) {
      throw std::runtime_error("ThreadPool::parallel_for: pool is shutting down");
    }
    for (int k = 1; k < chunks; ++k) {
      queue_.emplace_back([&, k] {
        try {
          body(starts[static_cast<size_t>(k)], starts[static_cast<size_t>(k) + 1], k);
        } catch (...) {
          errors[static_cast<size_t>(k)] = std::current_exception();
        }
        std::lock_guard<std::mutex> done(latch.mu);
        if (--latch.remaining == 0) latch.cv.notify_one();
      });
    }
  }
  cv_.notify_all();

  // The calling thread takes lane 0, then blocks until the workers drain the
  // rest.
  try {
    body(starts[0], starts[1], 0);
  } catch (...) {
    errors[0] = std::current_exception();
  }
  {
    std::unique_lock<std::mutex> lk(latch.mu);
    latch.cv.wait(lk, [&] { return latch.remaining == 0; });
  }

  // Deterministic propagation: the lowest lane's exception wins.
  for (const auto& e : errors) {
    if (e) std::rethrow_exception(e);
  }
}

}  // namespace wmcast::util
