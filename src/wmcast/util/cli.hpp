// Minimal command-line parsing for bench and example binaries.
// Supported forms: --key=value and --flag (boolean true).
#pragma once

#include <cstdint>
#include <map>
#include <string>

namespace wmcast::util {

/// Parses "--key=value" / "--flag" arguments; anything else is rejected with
/// std::invalid_argument so typos fail loudly in scripted runs.
class Args {
 public:
  Args(int argc, char** argv);

  bool has(const std::string& key) const;
  std::string get(const std::string& key, const std::string& def) const;
  int get_int(const std::string& key, int def) const;
  double get_double(const std::string& key, double def) const;
  uint64_t get_u64(const std::string& key, uint64_t def) const;
  bool get_bool(const std::string& key, bool def) const;

 private:
  std::map<std::string, std::string> kv_;
};

/// The one `--threads` convention shared by every binary: an explicit
/// `--threads=N` (N >= 1) wins, else the WMCAST_THREADS environment variable,
/// else 1 (serial reference execution). See util/thread_pool.hpp.
int resolve_threads(const Args& args);

}  // namespace wmcast::util
