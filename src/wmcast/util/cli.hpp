// Minimal command-line parsing for bench and example binaries.
// Supported forms: --key=value and --flag (boolean true).
#pragma once

#include <cstdint>
#include <initializer_list>
#include <map>
#include <string>
#include <string_view>

namespace wmcast::util {

/// Parses "--key=value" / "--flag" arguments; anything else is rejected with
/// std::invalid_argument so typos fail loudly in scripted runs. An empty flag
/// name ("--" or "--=x") is rejected the same way. Numeric getters require
/// the whole value to parse — "--n=12x" or "--rate=" throw with the offending
/// key and value in the message, and get_u64 rejects negative values instead
/// of wrapping them.
class Args {
 public:
  Args(int argc, char** argv);

  bool has(const std::string& key) const;
  std::string get(const std::string& key, const std::string& def) const;
  int get_int(const std::string& key, int def) const;
  double get_double(const std::string& key, double def) const;
  uint64_t get_u64(const std::string& key, uint64_t def) const;
  bool get_bool(const std::string& key, bool def) const;

  /// Throws std::invalid_argument listing every parsed flag not in `known`.
  /// Binaries call this once, after deciding their flag set, so a typo like
  /// --theads=8 aborts the run instead of silently using the default.
  void reject_unknown(std::initializer_list<std::string_view> known) const;

 private:
  std::map<std::string, std::string> kv_;
};

/// The one `--threads` convention shared by every binary: an explicit
/// `--threads=N` (N >= 1) wins, else the WMCAST_THREADS environment variable,
/// else 1 (serial reference execution). See util/thread_pool.hpp.
int resolve_threads(const Args& args);

/// The one `--simd=auto|scalar|avx2` convention: applies the requested kernel
/// dispatch mode process-wide (simd::set_mode) and returns it. Unknown names
/// and --simd=avx2 on a CPU without AVX2 throw std::invalid_argument, so
/// scripted byte-diff legs fail loudly instead of silently comparing the
/// dispatched path against itself. Default: auto.
void resolve_simd(const Args& args);

}  // namespace wmcast::util
