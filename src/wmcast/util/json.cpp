#include "wmcast/util/json.hpp"

#include <cctype>
#include <cmath>
#include <cstdio>
#include <stdexcept>

namespace wmcast::util {

namespace {

void fail_at(size_t pos, const std::string& what) {
  throw std::invalid_argument("json: " + what + " at offset " + std::to_string(pos));
}

}  // namespace

Json& Json::set(const std::string& key, Json value) {
  if (kind_ != Kind::kObject) throw std::invalid_argument("json: set() on non-object");
  for (auto& [k, v] : object_) {
    if (k == key) {
      v = std::move(value);
      return *this;
    }
  }
  object_.emplace_back(key, std::move(value));
  return *this;
}

Json& Json::push(Json value) {
  if (kind_ != Kind::kArray) throw std::invalid_argument("json: push() on non-array");
  array_.push_back(std::move(value));
  return *this;
}

const Json* Json::find(const std::string& key) const {
  if (kind_ != Kind::kObject) return nullptr;
  for (const auto& [k, v] : object_) {
    if (k == key) return &v;
  }
  return nullptr;
}

int64_t Json::as_int() const {
  if (kind_ == Kind::kInt) return int_;
  if (kind_ == Kind::kDouble) return static_cast<int64_t>(double_);
  return 0;
}

double Json::as_double() const {
  if (kind_ == Kind::kDouble) return double_;
  if (kind_ == Kind::kInt) return static_cast<double>(int_);
  return 0.0;
}

size_t Json::size() const {
  if (kind_ == Kind::kArray) return array_.size();
  if (kind_ == Kind::kObject) return object_.size();
  return 0;
}

std::string json_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\b': out += "\\b"; break;
      case '\f': out += "\\f"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

void Json::dump_to(std::string& out, int indent, int depth) const {
  const std::string pad = indent > 0 ? std::string(static_cast<size_t>(indent * (depth + 1)), ' ') : "";
  const std::string close_pad = indent > 0 ? std::string(static_cast<size_t>(indent * depth), ' ') : "";
  const char* nl = indent > 0 ? "\n" : "";
  const char* kv_sep = indent > 0 ? ": " : ":";

  switch (kind_) {
    case Kind::kNull:
      out += "null";
      break;
    case Kind::kBool:
      out += bool_ ? "true" : "false";
      break;
    case Kind::kInt:
      out += std::to_string(int_);
      break;
    case Kind::kDouble: {
      if (!std::isfinite(double_)) {
        out += "null";  // JSON has no inf/nan; null is the conventional stand-in
        break;
      }
      char buf[32];
      std::snprintf(buf, sizeof(buf), "%.12g", double_);
      out += buf;
      break;
    }
    case Kind::kString:
      out += '"';
      out += json_escape(string_);
      out += '"';
      break;
    case Kind::kArray: {
      if (array_.empty()) {
        out += "[]";
        break;
      }
      out += '[';
      out += nl;
      for (size_t i = 0; i < array_.size(); ++i) {
        out += pad;
        array_[i].dump_to(out, indent, depth + 1);
        if (i + 1 < array_.size()) out += ',';
        out += nl;
      }
      out += close_pad;
      out += ']';
      break;
    }
    case Kind::kObject: {
      if (object_.empty()) {
        out += "{}";
        break;
      }
      out += '{';
      out += nl;
      for (size_t i = 0; i < object_.size(); ++i) {
        out += pad;
        out += '"';
        out += json_escape(object_[i].first);
        out += '"';
        out += kv_sep;
        object_[i].second.dump_to(out, indent, depth + 1);
        if (i + 1 < object_.size()) out += ',';
        out += nl;
      }
      out += close_pad;
      out += '}';
      break;
    }
  }
}

std::string Json::dump(int indent) const {
  std::string out;
  dump_to(out, indent, 0);
  return out;
}

namespace {

class Parser {
 public:
  explicit Parser(const std::string& text) : t_(text) {}

  Json parse_document() {
    Json v = parse_value();
    skip_ws();
    if (pos_ != t_.size()) fail_at(pos_, "trailing content");
    return v;
  }

 private:
  // A malicious or corrupted document of nothing but '[' recurses once per
  // byte; cap the nesting so it fails cleanly instead of overflowing the
  // stack. 256 is far beyond anything the repo's schemas produce.
  static constexpr int kMaxDepth = 256;

  struct DepthGuard {
    explicit DepthGuard(Parser& p) : p_(p) {
      if (++p_.depth_ > kMaxDepth) fail_at(p_.pos_, "nesting too deep");
    }
    ~DepthGuard() { --p_.depth_; }
    Parser& p_;
  };

  void skip_ws() {
    while (pos_ < t_.size() && std::isspace(static_cast<unsigned char>(t_[pos_]))) ++pos_;
  }

  char peek() {
    if (pos_ >= t_.size()) fail_at(pos_, "unexpected end of input");
    return t_[pos_];
  }

  void expect(char c) {
    if (peek() != c) fail_at(pos_, std::string("expected '") + c + "'");
    ++pos_;
  }

  bool consume_literal(const char* lit) {
    const size_t n = std::char_traits<char>::length(lit);
    if (t_.compare(pos_, n, lit) == 0) {
      pos_ += n;
      return true;
    }
    return false;
  }

  Json parse_value() {
    skip_ws();
    const char c = peek();
    if (c == '{') return parse_object();
    if (c == '[') return parse_array();
    if (c == '"') return Json(parse_string());
    if (c == 't') {
      if (!consume_literal("true")) fail_at(pos_, "bad literal");
      return Json(true);
    }
    if (c == 'f') {
      if (!consume_literal("false")) fail_at(pos_, "bad literal");
      return Json(false);
    }
    if (c == 'n') {
      if (!consume_literal("null")) fail_at(pos_, "bad literal");
      return Json();
    }
    return parse_number();
  }

  Json parse_object() {
    const DepthGuard guard(*this);
    expect('{');
    Json obj = Json::object();
    skip_ws();
    if (peek() == '}') {
      ++pos_;
      return obj;
    }
    while (true) {
      skip_ws();
      const std::string key = parse_string();
      skip_ws();
      expect(':');
      obj.set(key, parse_value());
      skip_ws();
      const char c = peek();
      if (c == ',') {
        ++pos_;
        continue;
      }
      if (c == '}') {
        ++pos_;
        return obj;
      }
      fail_at(pos_, "expected ',' or '}'");
    }
  }

  Json parse_array() {
    const DepthGuard guard(*this);
    expect('[');
    Json arr = Json::array();
    skip_ws();
    if (peek() == ']') {
      ++pos_;
      return arr;
    }
    while (true) {
      arr.push(parse_value());
      skip_ws();
      const char c = peek();
      if (c == ',') {
        ++pos_;
        continue;
      }
      if (c == ']') {
        ++pos_;
        return arr;
      }
      fail_at(pos_, "expected ',' or ']'");
    }
  }

  std::string parse_string() {
    expect('"');
    std::string out;
    while (true) {
      if (pos_ >= t_.size()) fail_at(pos_, "unterminated string");
      const char c = t_[pos_++];
      if (c == '"') return out;
      if (static_cast<unsigned char>(c) < 0x20) fail_at(pos_ - 1, "raw control character");
      if (c != '\\') {
        out += c;
        continue;
      }
      if (pos_ >= t_.size()) fail_at(pos_, "unterminated escape");
      const char e = t_[pos_++];
      switch (e) {
        case '"': out += '"'; break;
        case '\\': out += '\\'; break;
        case '/': out += '/'; break;
        case 'b': out += '\b'; break;
        case 'f': out += '\f'; break;
        case 'n': out += '\n'; break;
        case 'r': out += '\r'; break;
        case 't': out += '\t'; break;
        case 'u': {
          unsigned code = parse_hex4();
          // Surrogate pairs: a high surrogate must be followed by an escaped
          // low surrogate; anything else (lone high, lone low, high+high) is
          // an error rather than mojibake in downstream telemetry.
          if (code >= 0xD800 && code <= 0xDBFF) {
            if (pos_ + 2 > t_.size() || t_[pos_] != '\\' || t_[pos_ + 1] != 'u') {
              fail_at(pos_, "high surrogate not followed by \\u low surrogate");
            }
            pos_ += 2;
            const unsigned lo = parse_hex4();
            if (lo < 0xDC00 || lo > 0xDFFF) {
              fail_at(pos_ - 4, "invalid low surrogate");
            }
            code = 0x10000 + ((code - 0xD800) << 10) + (lo - 0xDC00);
          } else if (code >= 0xDC00 && code <= 0xDFFF) {
            fail_at(pos_ - 4, "lone low surrogate");
          }
          if (code < 0x80) {
            out += static_cast<char>(code);
          } else if (code < 0x800) {
            out += static_cast<char>(0xC0 | (code >> 6));
            out += static_cast<char>(0x80 | (code & 0x3F));
          } else if (code < 0x10000) {
            out += static_cast<char>(0xE0 | (code >> 12));
            out += static_cast<char>(0x80 | ((code >> 6) & 0x3F));
            out += static_cast<char>(0x80 | (code & 0x3F));
          } else {
            out += static_cast<char>(0xF0 | (code >> 18));
            out += static_cast<char>(0x80 | ((code >> 12) & 0x3F));
            out += static_cast<char>(0x80 | ((code >> 6) & 0x3F));
            out += static_cast<char>(0x80 | (code & 0x3F));
          }
          break;
        }
        default:
          fail_at(pos_ - 1, "bad escape");
      }
    }
  }

  unsigned parse_hex4() {
    if (pos_ + 4 > t_.size()) fail_at(pos_, "bad \\u escape");
    unsigned code = 0;
    for (int i = 0; i < 4; ++i) {
      const char h = t_[pos_++];
      code <<= 4;
      if (h >= '0' && h <= '9') code |= static_cast<unsigned>(h - '0');
      else if (h >= 'a' && h <= 'f') code |= static_cast<unsigned>(h - 'a' + 10);
      else if (h >= 'A' && h <= 'F') code |= static_cast<unsigned>(h - 'A' + 10);
      else fail_at(pos_ - 1, "bad hex digit");
    }
    return code;
  }

  Json parse_number() {
    const size_t start = pos_;
    if (peek() == '-') ++pos_;
    while (pos_ < t_.size() && std::isdigit(static_cast<unsigned char>(t_[pos_]))) ++pos_;
    bool is_double = false;
    if (pos_ < t_.size() && t_[pos_] == '.') {
      is_double = true;
      ++pos_;
      while (pos_ < t_.size() && std::isdigit(static_cast<unsigned char>(t_[pos_]))) ++pos_;
    }
    if (pos_ < t_.size() && (t_[pos_] == 'e' || t_[pos_] == 'E')) {
      is_double = true;
      ++pos_;
      if (pos_ < t_.size() && (t_[pos_] == '+' || t_[pos_] == '-')) ++pos_;
      while (pos_ < t_.size() && std::isdigit(static_cast<unsigned char>(t_[pos_]))) ++pos_;
    }
    const std::string tok = t_.substr(start, pos_ - start);
    if (tok.empty() || tok == "-") fail_at(start, "bad number");
    try {
      if (is_double) return Json(std::stod(tok));
      return Json(static_cast<int64_t>(std::stoll(tok)));
    } catch (const std::exception&) {
      fail_at(start, "unparseable number");
    }
    return Json();  // unreachable
  }

  const std::string& t_;
  size_t pos_ = 0;
  int depth_ = 0;
};

}  // namespace

Json Json::parse(const std::string& text) { return Parser(text).parse_document(); }

}  // namespace wmcast::util
