#pragma once

// Monotonic per-shard arena (DESIGN.md §13). Each `SessionShards` lane owns
// one Arena; its SolveWorkspace's bitset words and scratch vectors allocate
// from it, so steady-state parallel solves never touch the shared heap (and
// never contend on the global allocator lock). Allocation only grows —
// nothing is freed until the arena itself dies — which is exactly the
// workspace lifetime: workspaces are prepared once per universe size and
// reused across solves.
//
// Ownership rule: an Arena must outlive every container seated on it. The
// structs that pair them (ShardWorkspaces) declare the arenas first so they
// destruct last; ArenaAllocator's select_on_container_copy_construction
// returns a heap-backed allocator, so copies that escape the shard (results,
// telemetry snapshots) never alias arena memory.

#include <cstddef>
#include <cstdint>
#include <memory>
#include <new>
#include <vector>

#include "wmcast/util/assert.hpp"

namespace wmcast::util {

class Arena {
 public:
  explicit Arena(std::size_t block_bytes = std::size_t{1} << 20)
      : block_bytes_(block_bytes < 4096 ? 4096 : block_bytes) {}

  Arena(const Arena&) = delete;
  Arena& operator=(const Arena&) = delete;

  void* allocate(std::size_t bytes, std::size_t align) {
    WMCAST_ASSERT(align != 0 && (align & (align - 1)) == 0,
                  "arena alignment must be a power of two");
    if (bytes == 0) bytes = 1;
    if (!blocks_.empty()) {
      Block& b = blocks_.back();
      // Align the address, not the offset: new[] only guarantees 16 bytes.
      const auto base = reinterpret_cast<std::uintptr_t>(b.data.get());
      const std::size_t at =
          ((base + b.used + align - 1) & ~(align - 1)) - base;
      if (at + bytes <= b.cap) {
        b.used = at + bytes;
        allocated_ += bytes;
        if (allocated_ > high_water_) high_water_ = allocated_;
        return b.data.get() + at;
      }
    }
    // New block: doubles past block_bytes_ for oversized requests so a big
    // bitset doesn't strand a chain of near-empty blocks.
    std::size_t cap = block_bytes_;
    while (cap < bytes + align) cap *= 2;
    Block b;
    b.data.reset(new unsigned char[cap]);
    b.cap = cap;
    b.used = 0;
    reserved_ += cap;
    blocks_.push_back(std::move(b));
    return allocate(bytes, align);
  }

  // Live bytes handed out (monotonic: arenas never free individually).
  std::size_t allocated_bytes() const { return allocated_; }
  // Peak of allocated_bytes() over the arena's lifetime.
  std::size_t high_water_bytes() const { return high_water_; }
  // Total block capacity reserved from the OS heap.
  std::size_t reserved_bytes() const { return reserved_; }

 private:
  struct Block {
    std::unique_ptr<unsigned char[]> data;
    std::size_t cap = 0;
    std::size_t used = 0;
  };
  std::vector<Block> blocks_;
  std::size_t block_bytes_;
  std::size_t allocated_ = 0;
  std::size_t high_water_ = 0;
  std::size_t reserved_ = 0;
};

// std-compatible allocator over an Arena. A null arena means plain heap —
// the default for every container so arena wiring is strictly opt-in.
// Deallocation is a no-op for arena-backed memory (monotonic); heap-backed
// memory is released normally. Propagation traits are all false and copies
// made via select_on_container_copy_construction fall back to the heap, so
// container copies that escape a shard never point into its arena.
template <typename T>
class ArenaAllocator {
 public:
  using value_type = T;
  using propagate_on_container_copy_assignment = std::false_type;
  using propagate_on_container_move_assignment = std::false_type;
  using propagate_on_container_swap = std::false_type;
  using is_always_equal = std::false_type;

  ArenaAllocator() noexcept : arena_(nullptr) {}
  explicit ArenaAllocator(Arena* arena) noexcept : arena_(arena) {}
  template <typename U>
  ArenaAllocator(const ArenaAllocator<U>& other) noexcept
      : arena_(other.arena()) {}

  T* allocate(std::size_t n) {
    const std::size_t bytes = n * sizeof(T);
    if (arena_ != nullptr) {
      return static_cast<T*>(arena_->allocate(bytes, alignof(T)));
    }
    return static_cast<T*>(::operator new(bytes));
  }

  void deallocate(T* p, std::size_t) noexcept {
    if (arena_ == nullptr) ::operator delete(p);
  }

  ArenaAllocator select_on_container_copy_construction() const noexcept {
    return ArenaAllocator();  // escaping copies are heap-backed
  }

  Arena* arena() const noexcept { return arena_; }

  template <typename U>
  bool operator==(const ArenaAllocator<U>& o) const noexcept {
    return arena_ == o.arena();
  }
  template <typename U>
  bool operator!=(const ArenaAllocator<U>& o) const noexcept {
    return arena_ != o.arena();
  }

 private:
  Arena* arena_;
};

// Shorthand for arena-capable containers: heap-backed when default-built,
// arena-backed when constructed with ArenaAllocator(&arena).
template <typename T>
using ArenaVector = std::vector<T, ArenaAllocator<T>>;

}  // namespace wmcast::util
