// ASCII table and CSV output for the benchmark harnesses. Each figure bench
// prints a human-readable table (the paper's series) and can mirror it to a
// CSV file for plotting.
#pragma once

#include <fstream>
#include <string>
#include <vector>

namespace wmcast::util {

/// Column-aligned ASCII table, built row by row.
class Table {
 public:
  explicit Table(std::vector<std::string> headers);

  void add_row(std::vector<std::string> cells);

  /// Render with a header separator; every column as wide as its widest cell.
  std::string to_string() const;
  /// Render as CSV (no alignment padding).
  std::string to_csv() const;

  /// Print to stdout.
  void print() const;
  /// Write CSV to `path`; returns false (and warns on stderr) on I/O failure.
  bool write_csv(const std::string& path) const;

  int rows() const { return static_cast<int>(rows_.size()); }

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace wmcast::util
