// Console histogram rendering for CLI/exporting analytics (bar charts in
// plain text, value-labeled).
#pragma once

#include <string>
#include <vector>

namespace wmcast::util {

/// Renders labeled counts as an ASCII bar chart, one row per bucket:
///   label | ######################### 42
/// Bars scale to `width` characters for the largest count. Buckets and
/// labels must have equal sizes.
std::string render_histogram(const std::vector<std::string>& labels,
                             const std::vector<int>& counts, int width = 40);

/// Convenience for integer-indexed buckets ("0", "1", ..., ">=N-1" for the
/// final clamped bucket of e.g. wlan::CoverageReport histograms).
std::string render_indexed_histogram(const std::vector<int>& counts, int width = 40);

}  // namespace wmcast::util
