// Bucketed value histograms plus console rendering. util::Histogram is the
// shared latency/size distribution instrument: ctrl::Telemetry records into
// it, the serve subsystem derives its p50/p99/p999 latency SLOs from it, and
// benches embed its JSON form in their machine-readable output.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "wmcast/util/json.hpp"

namespace wmcast::util {

/// Histogram over explicit ascending bucket upper bounds, with an implicit
/// overflow bucket; tracks count/sum/min/max exactly so means are not subject
/// to bucketing error.
class Histogram {
 public:
  /// `upper_bounds` must be non-empty and strictly ascending.
  explicit Histogram(std::vector<double> upper_bounds);

  /// Geometric bucket ladder: bounds start, start*factor, ... (n bounds).
  static Histogram exponential(double start, double factor, int n);

  void record(double v);

  uint64_t count() const { return count_; }
  double sum() const { return sum_; }
  double mean() const { return count_ == 0 ? 0.0 : sum_ / static_cast<double>(count_); }
  double min_value() const { return count_ == 0 ? 0.0 : min_; }
  double max_value() const { return count_ == 0 ? 0.0 : max_; }

  const std::vector<double>& upper_bounds() const { return bounds_; }
  /// counts().size() == upper_bounds().size() + 1 (last = overflow).
  const std::vector<uint64_t>& counts() const { return counts_; }

  /// Estimate of the q-quantile (q in [0, 1]) with linear interpolation
  /// inside the containing bucket, the bucket span clamped to the exactly
  /// tracked [min, max] (so the first bucket never reports below the observed
  /// minimum and the overflow bucket never above the observed maximum).
  /// Contract: q <= 0 is the exact min and q >= 1 the exact max; a single
  /// sample is every quantile of itself; an empty histogram has no quantiles —
  /// returns NaN (to_json guards the empty case and serializes 0.0 so the
  /// schema stays numeric).
  double quantile(double q) const;

  /// ASCII bar chart (labels = "<=bound" / ">bound") via util::render_histogram.
  std::string render(int width = 40) const;

  /// Bounds, counts, count/sum/min/max/mean, and p50/p99/p999.
  Json to_json() const;

 private:
  std::vector<double> bounds_;
  std::vector<uint64_t> counts_;
  uint64_t count_ = 0;
  double sum_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

/// Renders labeled counts as an ASCII bar chart, one row per bucket:
///   label | ######################### 42
/// Bars scale to `width` characters for the largest count. Buckets and
/// labels must have equal sizes.
std::string render_histogram(const std::vector<std::string>& labels,
                             const std::vector<int>& counts, int width = 40);

/// Convenience for integer-indexed buckets ("0", "1", ..., ">=N-1" for the
/// final clamped bucket of e.g. wlan::CoverageReport histograms).
std::string render_indexed_histogram(const std::vector<int>& counts, int width = 40);

}  // namespace wmcast::util
