#pragma once

// Runtime-dispatched word-parallel kernels for DynBitset and the coverage
// engine (DESIGN.md §13). The CPU is probed once (`caps()`); a process-wide
// mode (`set_mode`) can force the scalar path so the SIMD implementations can
// be differentially tested against it — both paths compute exact integer
// popcounts, so they are bit-identical by construction and any divergence is
// a bug, not a tolerance.

#include <cstddef>
#include <cstdint>
#include <string>

namespace wmcast::simd {

enum class Mode : int {
  kAuto = 0,    // use the widest instruction set the CPU supports
  kScalar = 1,  // force the portable unrolled-word path
  kAvx2 = 2,    // force AVX2 (requires caps().avx2; asserted at set_mode)
};

struct Caps {
  bool avx2 = false;
};

// CPU capabilities, detected once on first call.
const Caps& caps();

// Process-wide dispatch override. kAuto by default. set_mode(kAvx2) on a CPU
// without AVX2 throws std::invalid_argument.
void set_mode(Mode m);
Mode mode();

// True when the AVX2 kernels will actually be used.
bool active_avx2();

// "auto" | "scalar" | "avx2" <-> Mode, for --simd= flags.
Mode mode_from_name(const std::string& name);
const char* mode_name(Mode m);

// RAII mode override for tests and differential oracles.
class ScopedMode {
 public:
  explicit ScopedMode(Mode m) : prev_(mode()) { set_mode(m); }
  ~ScopedMode() { set_mode(prev_); }
  ScopedMode(const ScopedMode&) = delete;
  ScopedMode& operator=(const ScopedMode&) = delete;

 private:
  Mode prev_;
};

// Kernels over raw 64-bit word arrays (n = word count). Dispatched once per
// call on the current mode; tails are handled internally. The scalar
// implementations are exposed directly so tests can cross-check dispatch.
int popcount_words(const uint64_t* w, std::size_t n);
int popcount_and_words(const uint64_t* a, const uint64_t* b, std::size_t n);
int popcount_andnot_words(const uint64_t* a, const uint64_t* b, std::size_t n);

int popcount_words_scalar(const uint64_t* w, std::size_t n);
int popcount_and_words_scalar(const uint64_t* a, const uint64_t* b,
                              std::size_t n);
int popcount_andnot_words_scalar(const uint64_t* a, const uint64_t* b,
                                 std::size_t n);

}  // namespace wmcast::simd
