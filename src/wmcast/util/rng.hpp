// Deterministic random number generation. Every experiment in the repository
// derives its randomness from a seeded Rng so 40-scenario sweeps reproduce
// bit-for-bit; benches print the seed they used.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

namespace wmcast::util {

/// xoshiro256** PRNG (Blackman & Vigna), seeded via SplitMix64. Not
/// cryptographic; fast and statistically strong enough for simulation.
class Rng {
 public:
  explicit Rng(uint64_t seed = 0x9e3779b97f4a7c15ull);

  uint64_t next_u64();

  /// Uniform double in [0, 1).
  double next_double();
  /// Uniform double in [lo, hi).
  double uniform(double lo, double hi);
  /// Uniform integer in [0, n). Requires n > 0.
  int next_int(int n);
  /// Uniform integer in [lo, hi] inclusive.
  int uniform_int(int lo, int hi);
  /// Bernoulli trial with success probability p.
  bool next_bool(double p = 0.5);

  /// Fisher-Yates shuffle.
  template <typename T>
  void shuffle(std::vector<T>& v) {
    for (int i = static_cast<int>(v.size()) - 1; i > 0; --i) {
      using std::swap;
      swap(v[static_cast<size_t>(i)], v[static_cast<size_t>(next_int(i + 1))]);
    }
  }

  /// A fresh generator whose seed is derived from this one; use to give each
  /// of N scenarios an independent stream.
  Rng fork();

 private:
  uint64_t s_[4];
};

/// Identity permutation 0..n-1.
std::vector<int> iota_permutation(int n);

}  // namespace wmcast::util
