#include "wmcast/mac/airtime.hpp"

#include <cmath>

#include "wmcast/util/assert.hpp"

namespace wmcast::mac {

double frame_duration_us(int payload_bytes, double rate_mbps) {
  util::require(payload_bytes > 0, "frame_duration_us: payload must be positive");
  util::require(rate_mbps > 0.0, "frame_duration_us: rate must be positive");
  const int psdu_bits = 8 * (payload_bytes + Ofdm80211a::kMacHeaderBytes);
  const int total_bits = Ofdm80211a::kServiceBits + psdu_bits + Ofdm80211a::kTailBits;
  const double bits_per_symbol = rate_mbps * Ofdm80211a::kSymbolUs;  // Mbps * us = bits
  const double n_symbols = std::ceil(total_bits / bits_per_symbol);
  return Ofdm80211a::kPreambleUs + Ofdm80211a::kSignalUs +
         n_symbols * Ofdm80211a::kSymbolUs;
}

double broadcast_airtime_us(int payload_bytes, double rate_mbps, int mean_backoff_slots) {
  util::require(mean_backoff_slots >= 0, "broadcast_airtime_us: negative backoff");
  return Ofdm80211a::kDifsUs + mean_backoff_slots * Ofdm80211a::kSlotUs +
         frame_duration_us(payload_bytes, rate_mbps);
}

double airtime_load(double stream_mbps, double tx_rate_mbps, int payload_bytes) {
  util::require(stream_mbps > 0.0, "airtime_load: stream rate must be positive");
  // Packets per microsecond carried by the stream.
  const double pkts_per_us = stream_mbps / (8.0 * payload_bytes);
  return pkts_per_us * broadcast_airtime_us(payload_bytes, tx_rate_mbps);
}

double ideal_load(double stream_mbps, double tx_rate_mbps) {
  util::require(tx_rate_mbps > 0.0, "ideal_load: tx rate must be positive");
  return stream_mbps / tx_rate_mbps;
}

}  // namespace wmcast::mac
