// 802.11a OFDM airtime model. The paper's load definition (Definition 1)
// idealizes the busy fraction of a multicast stream as stream_rate/tx_rate;
// this module provides the detailed frame-level accounting (PLCP preamble,
// SIGNAL field, SERVICE/tail bits, symbol quantization, DIFS) so the
// idealization can be validated and its error quantified (ablation bench).
#pragma once

namespace wmcast::mac {

/// 802.11a OFDM timing constants (IEEE 802.11-2007, clause 17).
struct Ofdm80211a {
  static constexpr double kPreambleUs = 16.0;  // PLCP preamble
  static constexpr double kSignalUs = 4.0;     // SIGNAL field (1 OFDM symbol)
  static constexpr double kSymbolUs = 4.0;     // OFDM symbol duration
  static constexpr int kServiceBits = 16;
  static constexpr int kTailBits = 6;
  static constexpr double kDifsUs = 34.0;
  static constexpr double kSifsUs = 16.0;
  static constexpr double kSlotUs = 9.0;
  static constexpr int kMacHeaderBytes = 28;  // data header + FCS
};

/// Duration of one PPDU carrying `payload_bytes` of MSDU at `rate_mbps`,
/// in microseconds (preamble + SIGNAL + data symbols, with the MAC header).
double frame_duration_us(int payload_bytes, double rate_mbps);

/// Average channel-busy time per broadcast frame including DIFS and the mean
/// backoff (broadcast sends once, no ACK).
double broadcast_airtime_us(int payload_bytes, double rate_mbps,
                            int mean_backoff_slots = 7);

/// Fraction of airtime a multicast stream of `stream_mbps` occupies when
/// transmitted at `tx_rate_mbps` in `payload_bytes` packets, under the frame
/// model above. Always >= the ideal stream/tx ratio.
double airtime_load(double stream_mbps, double tx_rate_mbps, int payload_bytes = 1500);

/// The paper's idealized load: stream_mbps / tx_rate_mbps.
double ideal_load(double stream_mbps, double tx_rate_mbps);

}  // namespace wmcast::mac
