// First-order queueing delay for multicast frames at an AP. Streams arrive
// as (near-)periodic frames; the AP's channel serves them amid its other
// multicast transmissions. Treating the aggregate multicast process at one
// AP as M/D/1 with utilization rho (the AP's multicast load) and a mean
// service time of one frame gives the classic Pollaczek-Khinchine waiting
// time — a rough but monotone-in-load latency proxy for streaming:
//
//     W = rho * S / (2 (1 - rho)),   sojourn = W + S.
//
// The paper optimizes loads; this module translates loads into what a TV
// viewer feels (buffering headroom), giving BLA's max-load objective its
// latency interpretation: the worst AP's delay explodes as rho -> 1.
#pragma once

#include "wmcast/wlan/association.hpp"

namespace wmcast::mac {

/// Mean waiting time (in multiples of the mean frame service time) of an
/// M/D/1 queue at utilization rho in [0, 1). Throws for rho outside [0, 1).
double md1_waiting_time(double rho);

struct DelayReport {
  /// Mean multicast frame sojourn per AP, in milliseconds (0 for idle APs).
  std::vector<double> ap_sojourn_ms;
  double max_sojourn_ms = 0.0;
  double mean_sojourn_ms = 0.0;  // over transmitting APs
  /// Worst queueing wait in units of the AP's service time — the monotone
  /// image of the BLA objective (sojourn in ms is NOT monotone in load:
  /// a lightly loaded AP sending at 6 Mbps has slower frames than a busier
  /// one at 54 Mbps).
  double max_normalized_wait = 0.0;
  int saturated_aps = 0;  // rho >= 1: unbounded delay (counted, not averaged)
};

/// Evaluates per-AP multicast frame delay under an association. Service time
/// per frame is computed from each AP's average transmission rate and
/// `payload_bytes`; utilization is the AP's multicast load.
DelayReport stream_delay_report(const wlan::Scenario& sc, const wlan::LoadReport& loads,
                                int payload_bytes = 1500);

}  // namespace wmcast::mac
