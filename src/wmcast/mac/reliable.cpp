#include "wmcast/mac/reliable.hpp"

#include <cmath>

#include "wmcast/mac/airtime.hpp"
#include "wmcast/util/assert.hpp"

namespace wmcast::mac {

namespace {
constexpr int kAckBytes = 14;
}

double expected_rounds_until_all(int n, double p) {
  util::require(n >= 0, "expected_rounds_until_all: negative receivers");
  util::require(p >= 0.0 && p < 1.0, "expected_rounds_until_all: loss must be in [0,1)");
  if (n == 0 || p == 0.0) return 1.0;
  double total = 0.0;
  double pk = 1.0;  // p^k for k = 0
  for (int k = 0; k < 10000; ++k) {
    // P(some receiver still missing after k transmissions) = 1 - (1-p^k)^n.
    const double missing = 1.0 - std::pow(1.0 - pk, n);
    if (k > 0 && missing < 1e-12) break;
    total += missing;  // E[T] = sum_{k>=0} P(T > k)
    pk *= p;
  }
  return total;
}

double reliable_airtime_multiplier(ReliableScheme scheme, int n_receivers,
                                   double per_frame_loss, int payload_bytes,
                                   double rate_mbps) {
  util::require(n_receivers >= 0, "reliable_airtime_multiplier: negative receivers");
  util::require(per_frame_loss >= 0.0 && per_frame_loss < 1.0,
                "reliable_airtime_multiplier: loss must be in [0,1)");

  const double data_us = broadcast_airtime_us(payload_bytes, rate_mbps, 0);
  const double ack_us = Ofdm80211a::kSifsUs + frame_duration_us(kAckBytes, rate_mbps);

  switch (scheme) {
    case ReliableScheme::kPlainBroadcast:
      return 1.0;
    case ReliableScheme::kLeaderAck: {
      // Retransmit until the leader ACKs: geometric with success 1 - p.
      const double tx = 1.0 / (1.0 - per_frame_loss);
      return tx * (data_us + ack_us) / data_us;
    }
    case ReliableScheme::kBmwUnicastChain: {
      // One reliable unicast (data + ACK, geometric retries) per receiver.
      if (n_receivers == 0) return 1.0;
      const double per_rx = (data_us + ack_us) / (1.0 - per_frame_loss);
      return n_receivers * per_rx / data_us;
    }
    case ReliableScheme::kBatchAck: {
      // BMMM: each round = data frame + one ACK slot per receiver; rounds
      // repeat until everyone has the payload.
      const double rounds = expected_rounds_until_all(n_receivers, per_frame_loss);
      return rounds * (data_us + n_receivers * ack_us) / data_us;
    }
  }
  WMCAST_ASSERT(false, "reliable_airtime_multiplier: unknown scheme");
  return 1.0;
}

double expected_delivery(ReliableScheme scheme, double per_frame_loss) {
  util::require(per_frame_loss >= 0.0 && per_frame_loss < 1.0,
                "expected_delivery: loss must be in [0,1)");
  return scheme == ReliableScheme::kPlainBroadcast ? 1.0 - per_frame_loss : 1.0;
}

}  // namespace wmcast::mac
