// Reliable MAC-layer multicast cost models. The paper's §2 surveys the
// protocol families (leader-ACK schemes like 802.11MX, BMW's per-receiver
// unicast chain, BMMM's batched ACK rounds) and notes that "the efficiency
// of the MAC layer protocol can increase the efficiency of our algorithms":
// association control composes with whatever reliability scheme runs below
// it. This module provides first-order airtime models for those schemes —
// the expected airtime multiplier over a plain (unreliable) broadcast frame
// as a function of receiver count and per-frame loss probability — so the
// reliability bench can translate collision rates into reliable-multicast
// airtime costs per association policy.
#pragma once

namespace wmcast::mac {

enum class ReliableScheme {
  kPlainBroadcast,   // 802.11 default: one transmission, no feedback
  kLeaderAck,        // one designated receiver ACKs (802.11MX/RMAC style)
  kBmwUnicastChain,  // BMW: reliable unicast to each receiver in turn
  kBatchAck,         // BMMM: one data frame + per-receiver ACK round,
                     // retransmitted until every receiver has it
};

/// Expected airtime (channel-busy time) per delivered multicast payload,
/// expressed as a multiple of the plain broadcast frame's airtime.
/// `per_frame_loss` is the independent per-receiver frame loss probability
/// (e.g. the collision-induced loss measured by sim::simulate_csma);
/// `n_receivers` the multicast group size at this AP.
double reliable_airtime_multiplier(ReliableScheme scheme, int n_receivers,
                                   double per_frame_loss, int payload_bytes = 1500,
                                   double rate_mbps = 24.0);

/// Expected fraction of receivers that get a given payload under the scheme
/// (1.0 for every feedback-based scheme; 1 - loss for plain broadcast).
double expected_delivery(ReliableScheme scheme, double per_frame_loss);

/// Expected number of data-frame transmissions until all `n` independent
/// receivers with loss `p` have the frame (the BMMM retransmission count):
/// sum_{k>=1} (1 - (1 - p^k)^n).
double expected_rounds_until_all(int n, double p);

}  // namespace wmcast::mac
