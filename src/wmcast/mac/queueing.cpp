#include "wmcast/mac/queueing.hpp"

#include <algorithm>

#include "wmcast/mac/airtime.hpp"
#include "wmcast/util/assert.hpp"

namespace wmcast::mac {

double md1_waiting_time(double rho) {
  util::require(rho >= 0.0 && rho < 1.0, "md1_waiting_time: rho must be in [0, 1)");
  return rho / (2.0 * (1.0 - rho));
}

DelayReport stream_delay_report(const wlan::Scenario& sc, const wlan::LoadReport& loads,
                                int payload_bytes) {
  util::require(static_cast<int>(loads.ap_load.size()) == sc.n_aps(),
                "stream_delay_report: load report does not match scenario");
  util::require(payload_bytes > 0, "stream_delay_report: bad payload size");

  DelayReport rep;
  rep.ap_sojourn_ms.assign(static_cast<size_t>(sc.n_aps()), 0.0);

  double sum = 0.0;
  int transmitting = 0;
  for (int a = 0; a < sc.n_aps(); ++a) {
    // Mean frame service time: average the per-session frame airtime,
    // weighted by each session's frame rate (proportional to stream rate).
    double weighted_us = 0.0;
    double weight = 0.0;
    for (int s = 0; s < sc.n_sessions(); ++s) {
      const double tx = loads.tx_rate[static_cast<size_t>(a)][static_cast<size_t>(s)];
      if (tx <= 0.0) continue;
      weighted_us += sc.session_rate(s) * broadcast_airtime_us(payload_bytes, tx);
      weight += sc.session_rate(s);
    }
    if (weight <= 0.0) continue;  // AP transmits nothing

    const double rho = loads.ap_load[static_cast<size_t>(a)];
    if (rho >= 1.0) {
      ++rep.saturated_aps;
      continue;
    }
    const double service_ms = (weighted_us / weight) / 1000.0;
    const double wait = md1_waiting_time(rho);
    const double sojourn = service_ms * (wait + 1.0);
    rep.ap_sojourn_ms[static_cast<size_t>(a)] = sojourn;
    rep.max_sojourn_ms = std::max(rep.max_sojourn_ms, sojourn);
    rep.max_normalized_wait = std::max(rep.max_normalized_wait, wait);
    sum += sojourn;
    ++transmitting;
  }
  rep.mean_sojourn_ms = transmitting > 0 ? sum / transmitting : 0.0;
  return rep;
}

}  // namespace wmcast::mac
