#include "wmcast/exact/exact_mnu.hpp"

#include <algorithm>
#include <cmath>
#include <functional>

#include "wmcast/setcover/mcg.hpp"
#include "wmcast/util/assert.hpp"

namespace wmcast::exact {

namespace {

constexpr double kTol = 1e-9;
// Per-group configuration cap: beyond this the groupwise searcher falls back
// to the set-wise searcher (never hit on paper-scale instances, where tight
// budgets admit only a handful of sets per AP).
constexpr size_t kMaxConfigs = 20000;

// ---------------------------------------------------------------------------
// Groupwise searcher: enumerate, per group (AP), every maximal coverage its
// budget allows ("configurations"), then branch over groups. At tight
// budgets each group has few configurations, and the branching factor per
// level equals that count — far stronger than include/exclude over sets.
// ---------------------------------------------------------------------------

struct GroupwiseSearcher {
  const setcover::SetSystem& sys;
  BbClock clock;

  struct Config {
    util::DynBitset members;  // union of the chosen sets
    std::vector<int> sets;
  };
  // configs[g]: feasible, union-maximal configurations (always includes the
  // empty one as the last entry).
  std::vector<std::vector<Config>> configs;
  std::vector<int> group_order;              // branch order over groups
  std::vector<util::DynBitset> suffix_union; // union over groups order[k..]

  int best_covered = -1;
  std::vector<int> best_chosen;
  std::vector<const Config*> stack;

  GroupwiseSearcher(const setcover::SetSystem& s, const BbLimits& limits)
      : sys(s), clock(limits) {}

  /// Enumerates a group's feasible set combinations; returns false when the
  /// cap is exceeded.
  bool enumerate_group(int g, double budget) {
    const auto& set_ids = sys.group_sets(g);
    std::vector<int> usable;
    for (const int j : set_ids) {
      if (sys.set(j).cost <= budget + kTol) usable.push_back(j);
    }
    // DFS over usable sets (include/exclude) within the budget, collecting
    // unions. Nested sets of one (AP, session) make many combinations
    // redundant; the maximality filter below removes them.
    std::vector<Config> found;
    std::vector<int> chosen;
    util::DynBitset current(sys.n_elements());
    bool ok = true;
    std::function<void(size_t, double)> dfs = [&](size_t i, double remaining) {
      if (!ok) return;
      if (found.size() > 4 * kMaxConfigs) {  // guard the enumeration itself
        ok = false;
        return;
      }
      if (i == usable.size()) {
        found.push_back(Config{current, chosen});
        return;
      }
      // Exclude usable[i].
      dfs(i + 1, remaining);
      // Include usable[i] if it fits.
      const auto& cs = sys.set(usable[i]);
      if (cs.cost <= remaining + kTol) {
        const util::DynBitset saved = current;
        current.or_assign(cs.members);
        chosen.push_back(usable[i]);
        dfs(i + 1, remaining - cs.cost);
        chosen.pop_back();
        current = saved;
      }
    };
    dfs(0, budget);
    if (!ok) return false;

    // Keep only union-maximal configurations (coverage is the only
    // objective, so a config whose union is contained in another's is
    // useless; cost no longer matters once feasible).
    std::sort(found.begin(), found.end(), [](const Config& a, const Config& b) {
      return a.members.count() > b.members.count();
    });
    std::vector<Config> maximal;
    for (auto& c : found) {
      bool dominated = false;
      for (const auto& m : maximal) {
        if (c.members.is_subset_of(m.members)) {
          dominated = true;
          break;
        }
      }
      if (!dominated) maximal.push_back(std::move(c));
      if (maximal.size() > kMaxConfigs) return false;
    }
    // The empty config survives only if the group has no usable sets; make
    // sure it is always available as the "skip this group" branch.
    if (maximal.empty() || maximal.back().members.any()) {
      maximal.push_back(Config{util::DynBitset(sys.n_elements()), {}});
    }
    configs[static_cast<size_t>(g)] = std::move(maximal);
    return true;
  }

  void dfs(size_t k, const util::DynBitset& covered, int covered_count) {
    if (!clock.tick()) return;
    if (covered_count > best_covered) {
      best_covered = covered_count;
      best_chosen.clear();
      for (const Config* c : stack) {
        best_chosen.insert(best_chosen.end(), c->sets.begin(), c->sets.end());
      }
    }
    if (k == group_order.size()) return;

    // Bound: everything the remaining groups could still cover.
    util::DynBitset potential = suffix_union[k];
    potential.andnot_assign(covered);
    if (covered_count + potential.count() <= best_covered) return;

    const int g = group_order[k];
    // Children by decreasing marginal gain; identical-gain tail pruned by
    // the bound at the next level.
    std::vector<std::pair<int, const Config*>> children;
    children.reserve(configs[static_cast<size_t>(g)].size());
    for (const auto& c : configs[static_cast<size_t>(g)]) {
      children.emplace_back(c.members.and_count(potential), &c);
    }
    std::sort(children.begin(), children.end(),
              [](const auto& a, const auto& b) { return a.first > b.first; });

    bool tried_zero_gain = false;
    for (const auto& [gain, c] : children) {
      if (clock.exhausted()) return;
      // All zero-gain children are equivalent (they add nothing): descend
      // through at most one of them (the empty config is always among them).
      if (gain == 0) {
        if (tried_zero_gain) break;
        tried_zero_gain = true;
      }
      util::DynBitset child = covered;
      child.or_assign(c->members);
      stack.push_back(c);
      dfs(k + 1, child, covered_count + gain);
      stack.pop_back();
    }
  }
};

// ---------------------------------------------------------------------------
// Fallback set-wise searcher (include/exclude over sets with union +
// fractional-knapsack bounds) for instances whose groups are too rich to
// enumerate.
// ---------------------------------------------------------------------------

struct SetwiseSearcher {
  const setcover::SetSystem& sys;
  BbClock clock;
  std::vector<int> order;
  std::vector<util::DynBitset> suffix;
  std::vector<double> budgets;
  struct GroupSet {
    size_t pos;
    double cost;
    int count;
  };
  std::vector<std::vector<GroupSet>> group_suffix;

  int best_covered = -1;
  std::vector<int> best_chosen;
  std::vector<int> stack;
  std::vector<double> group_cost;

  SetwiseSearcher(const setcover::SetSystem& s, const BbLimits& limits)
      : sys(s), clock(limits), group_cost(static_cast<size_t>(s.n_groups()), 0.0) {}

  double group_knapsack(int g, size_t k) const {
    double budget = budgets[static_cast<size_t>(g)] - group_cost[static_cast<size_t>(g)];
    if (budget <= kTol) return 0.0;
    double value = 0.0;
    for (const auto& gs : group_suffix[static_cast<size_t>(g)]) {
      if (gs.pos < k) continue;
      if (gs.cost <= budget) {
        value += gs.count;
        budget -= gs.cost;
      } else {
        value += gs.count * budget / gs.cost;
        break;
      }
    }
    return value;
  }

  void dfs(size_t k, const util::DynBitset& covered, int covered_count) {
    if (!clock.tick()) return;
    if (covered_count > best_covered) {
      best_covered = covered_count;
      best_chosen = stack;
    }
    if (k == order.size()) return;

    util::DynBitset potential = suffix[k];
    potential.andnot_assign(covered);
    if (covered_count + potential.count() <= best_covered) return;

    double knapsack = 0.0;
    for (int g = 0; g < sys.n_groups(); ++g) knapsack += group_knapsack(g, k);
    // Coverage is integral, so the fractional knapsack value can be floored.
    if (covered_count + std::floor(knapsack + kTol) <= best_covered) return;

    const int j = order[k];
    const auto& cs = sys.set(j);
    const auto g = static_cast<size_t>(cs.group);

    if (group_cost[g] + cs.cost <= budgets[g] + kTol) {
      const int gain = cs.members.and_count(potential);
      if (gain > 0) {
        util::DynBitset child = covered;
        child.or_assign(cs.members);
        group_cost[g] += cs.cost;
        stack.push_back(j);
        dfs(k + 1, child, covered_count + gain);
        stack.pop_back();
        group_cost[g] -= cs.cost;
      }
    }
    if (clock.exhausted()) return;
    dfs(k + 1, covered, covered_count);
  }
};

}  // namespace

ExactMnuResult exact_max_coverage(const setcover::SetSystem& sys,
                                  std::span<const double> group_budgets,
                                  const BbLimits& limits) {
  util::require(static_cast<int>(group_budgets.size()) == sys.n_groups(),
                "exact_max_coverage: one budget per group required");

  // Warm start from the MCG greedy (both searchers start from it).
  const auto greedy = setcover::mcg_greedy(sys, group_budgets);
  const int warm_covered = greedy.covered.count();

  // Try the groupwise searcher first.
  {
    GroupwiseSearcher s(sys, limits);
    s.configs.assign(static_cast<size_t>(sys.n_groups()), {});
    bool enumerable = true;
    for (int g = 0; g < sys.n_groups() && enumerable; ++g) {
      enumerable = s.enumerate_group(g, group_budgets[static_cast<size_t>(g)]);
    }
    if (enumerable) {
      // Branch order: groups by decreasing best-configuration size.
      s.group_order.resize(static_cast<size_t>(sys.n_groups()));
      std::vector<int> best_size(static_cast<size_t>(sys.n_groups()), 0);
      for (int g = 0; g < sys.n_groups(); ++g) {
        s.group_order[static_cast<size_t>(g)] = g;
        for (const auto& c : s.configs[static_cast<size_t>(g)]) {
          best_size[static_cast<size_t>(g)] =
              std::max(best_size[static_cast<size_t>(g)], c.members.count());
        }
      }
      std::sort(s.group_order.begin(), s.group_order.end(), [&](int a, int b) {
        return best_size[static_cast<size_t>(a)] != best_size[static_cast<size_t>(b)]
                   ? best_size[static_cast<size_t>(a)] > best_size[static_cast<size_t>(b)]
                   : a < b;
      });
      s.suffix_union.assign(s.group_order.size() + 1, util::DynBitset(sys.n_elements()));
      for (size_t k = s.group_order.size(); k-- > 0;) {
        s.suffix_union[k] = s.suffix_union[k + 1];
        for (const auto& c : s.configs[static_cast<size_t>(s.group_order[k])]) {
          s.suffix_union[k].or_assign(c.members);
        }
      }

      s.best_covered = warm_covered;
      s.best_chosen = greedy.chosen;
      s.dfs(0, util::DynBitset(sys.n_elements()), 0);

      ExactMnuResult res;
      res.chosen = std::move(s.best_chosen);
      res.covered = std::max(s.best_covered, 0);
      res.status = s.clock.status();
      res.nodes = s.clock.nodes();
      return res;
    }
  }

  // Fallback: set-wise include/exclude search.
  SetwiseSearcher s(sys, limits);
  s.budgets.assign(group_budgets.begin(), group_budgets.end());
  for (int j = 0; j < sys.n_sets(); ++j) {
    if (sys.set(j).cost <= group_budgets[static_cast<size_t>(sys.set(j).group)] + kTol) {
      s.order.push_back(j);
    }
  }
  std::sort(s.order.begin(), s.order.end(), [&](int a, int b) {
    const double da = sys.set(a).members.count() / sys.set(a).cost;
    const double db = sys.set(b).members.count() / sys.set(b).cost;
    return da != db ? da > db : a < b;
  });
  s.suffix.assign(s.order.size() + 1, util::DynBitset(sys.n_elements()));
  for (size_t k = s.order.size(); k-- > 0;) {
    s.suffix[k] = s.suffix[k + 1];
    s.suffix[k].or_assign(sys.set(s.order[k]).members);
  }
  s.group_suffix.assign(static_cast<size_t>(sys.n_groups()), {});
  for (size_t k = 0; k < s.order.size(); ++k) {
    const auto& cs = sys.set(s.order[k]);
    s.group_suffix[static_cast<size_t>(cs.group)].push_back(
        SetwiseSearcher::GroupSet{k, cs.cost, cs.members.count()});
  }

  s.best_covered = warm_covered;
  s.best_chosen = greedy.chosen;
  s.dfs(0, util::DynBitset(sys.n_elements()), 0);

  ExactMnuResult res;
  res.chosen = std::move(s.best_chosen);
  res.covered = std::max(s.best_covered, 0);
  res.status = s.clock.status();
  res.nodes = s.clock.nodes();
  return res;
}

ExactMnuResult exact_max_coverage_uniform(const setcover::SetSystem& sys, double budget,
                                          const BbLimits& limits) {
  const std::vector<double> budgets(static_cast<size_t>(sys.n_groups()), budget);
  return exact_max_coverage(sys, budgets, limits);
}

}  // namespace wmcast::exact
