#include "wmcast/exact/exact_mla.hpp"

#include <algorithm>
#include <limits>

#include "wmcast/setcover/greedy.hpp"
#include "wmcast/util/assert.hpp"

namespace wmcast::exact {

namespace {

constexpr double kTol = 1e-9;

struct Searcher {
  const setcover::SetSystem& sys;
  BbClock clock;
  // element -> indices of usable sets containing it
  std::vector<std::vector<int>> sets_of;
  // static per-element cost-share lower bound: min over S∋e of c(S)/|S|
  std::vector<double> share;

  double best_cost = std::numeric_limits<double>::infinity();
  std::vector<int> best_chosen;
  std::vector<int> stack;

  Searcher(const setcover::SetSystem& s, const BbLimits& limits)
      : sys(s), clock(limits) {}

  double lower_bound(const util::DynBitset& uncovered) const {
    double lb = 0.0;
    uncovered.for_each([&](int e) { lb += share[static_cast<size_t>(e)]; });
    return lb;
  }

  void dfs(util::DynBitset uncovered, double cost) {
    if (!clock.tick()) return;
    if (uncovered.none()) {
      if (cost < best_cost - kTol) {
        best_cost = cost;
        best_chosen = stack;
      }
      return;
    }
    if (cost + lower_bound(uncovered) >= best_cost - kTol) return;

    // Branch on the uncovered element with the fewest covering sets.
    int pivot = -1;
    size_t fewest = std::numeric_limits<size_t>::max();
    uncovered.for_each([&](int e) {
      const size_t k = sets_of[static_cast<size_t>(e)].size();
      if (k < fewest) {
        fewest = k;
        pivot = e;
      }
    });
    WMCAST_ASSERT(pivot >= 0, "exact_mla: uncovered element with no covering set");

    // Try covering sets in order of increasing cost per newly covered element
    // so good incumbents appear early.
    std::vector<std::pair<double, int>> order;
    for (const int j : sets_of[static_cast<size_t>(pivot)]) {
      const int gain = sys.set(j).members.and_count(uncovered);
      order.emplace_back(sys.set(j).cost / std::max(gain, 1), j);
    }
    std::sort(order.begin(), order.end());

    for (const auto& [key, j] : order) {
      (void)key;
      if (clock.exhausted()) return;
      util::DynBitset child = uncovered;
      child.andnot_assign(sys.set(j).members);
      stack.push_back(j);
      dfs(std::move(child), cost + sys.set(j).cost);
      stack.pop_back();
    }
  }
};

}  // namespace

ExactCoverResult exact_min_cost_cover(const setcover::SetSystem& sys,
                                      const BbLimits& limits) {
  Searcher s(sys, limits);

  // Dominated-set elimination: drop any set that is a subset of a no-more-
  // expensive other set. Keeps optima intact and shrinks the branching factor.
  std::vector<bool> dominated(static_cast<size_t>(sys.n_sets()), false);
  for (int i = 0; i < sys.n_sets(); ++i) {
    for (int j = 0; j < sys.n_sets(); ++j) {
      if (i == j || dominated[static_cast<size_t>(i)]) continue;
      const auto& a = sys.set(i);
      const auto& b = sys.set(j);
      if (dominated[static_cast<size_t>(j)]) continue;
      if (a.members.is_subset_of(b.members) &&
          (a.cost > b.cost + kTol ||
           (std::abs(a.cost - b.cost) <= kTol && (a.members.count() < b.members.count() || i > j)))) {
        dominated[static_cast<size_t>(i)] = true;
      }
    }
  }

  s.sets_of.assign(static_cast<size_t>(sys.n_elements()), {});
  s.share.assign(static_cast<size_t>(sys.n_elements()), 0.0);
  std::vector<double> min_share(static_cast<size_t>(sys.n_elements()),
                                std::numeric_limits<double>::infinity());
  for (int j = 0; j < sys.n_sets(); ++j) {
    if (dominated[static_cast<size_t>(j)]) continue;
    const auto& cs = sys.set(j);
    const double per_element = cs.cost / std::max(cs.members.count(), 1);
    cs.members.for_each([&](int e) {
      s.sets_of[static_cast<size_t>(e)].push_back(j);
      min_share[static_cast<size_t>(e)] =
          std::min(min_share[static_cast<size_t>(e)], per_element);
    });
  }
  sys.coverable().for_each([&](int e) { s.share[static_cast<size_t>(e)] = min_share[static_cast<size_t>(e)]; });

  // Warm start from the greedy cover.
  const auto greedy = setcover::greedy_set_cover(sys);
  if (greedy.complete) {
    s.best_cost = greedy.total_cost;
    s.best_chosen = greedy.chosen;
  }

  s.dfs(sys.coverable(), 0.0);

  ExactCoverResult res;
  res.chosen = std::move(s.best_chosen);
  res.cost = s.best_cost == std::numeric_limits<double>::infinity() ? 0.0 : s.best_cost;
  res.status = s.clock.status();
  res.nodes = s.clock.nodes();
  return res;
}

}  // namespace wmcast::exact
