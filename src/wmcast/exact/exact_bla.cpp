#include "wmcast/exact/exact_bla.hpp"

#include <algorithm>
#include <limits>

#include "wmcast/setcover/scg.hpp"
#include "wmcast/util/assert.hpp"

namespace wmcast::exact {

namespace {

constexpr double kTol = 1e-9;

struct Searcher {
  const setcover::SetSystem& sys;
  BbClock clock;
  std::vector<std::vector<int>> sets_of;

  double best_max = std::numeric_limits<double>::infinity();
  std::vector<int> best_chosen;
  std::vector<int> stack;
  std::vector<double> group_cost;

  Searcher(const setcover::SetSystem& s, const BbLimits& limits)
      : sys(s), clock(limits),
        group_cost(static_cast<size_t>(s.n_groups()), 0.0) {}

  /// Admissible bound: every uncovered element forces at least its cheapest
  /// "resulting max" given current group costs.
  double lower_bound(const util::DynBitset& uncovered, double cur_max) const {
    double lb = cur_max;
    uncovered.for_each([&](int e) {
      double elem_best = std::numeric_limits<double>::infinity();
      for (const int j : sets_of[static_cast<size_t>(e)]) {
        const auto& cs = sys.set(j);
        const double resulting =
            std::max(cur_max, group_cost[static_cast<size_t>(cs.group)] + cs.cost);
        elem_best = std::min(elem_best, resulting);
      }
      lb = std::max(lb, elem_best);
    });
    return lb;
  }

  void dfs(util::DynBitset uncovered, double cur_max) {
    if (!clock.tick()) return;
    if (uncovered.none()) {
      if (cur_max < best_max - kTol) {
        best_max = cur_max;
        best_chosen = stack;
      }
      return;
    }
    if (lower_bound(uncovered, cur_max) >= best_max - kTol) return;

    int pivot = -1;
    size_t fewest = std::numeric_limits<size_t>::max();
    uncovered.for_each([&](int e) {
      const size_t k = sets_of[static_cast<size_t>(e)].size();
      if (k < fewest) {
        fewest = k;
        pivot = e;
      }
    });
    WMCAST_ASSERT(pivot >= 0, "exact_bla: uncovered element with no covering set");

    // Children ordered by the max-load they would produce, then by coverage.
    std::vector<std::pair<double, int>> order;
    for (const int j : sets_of[static_cast<size_t>(pivot)]) {
      const auto& cs = sys.set(j);
      const double resulting =
          std::max(cur_max, group_cost[static_cast<size_t>(cs.group)] + cs.cost);
      order.emplace_back(resulting, j);
    }
    std::sort(order.begin(), order.end());

    for (const auto& [resulting, j] : order) {
      if (clock.exhausted()) return;
      if (resulting >= best_max - kTol) break;  // order is ascending
      const auto& cs = sys.set(j);
      util::DynBitset child = uncovered;
      child.andnot_assign(cs.members);
      group_cost[static_cast<size_t>(cs.group)] += cs.cost;
      stack.push_back(j);
      dfs(std::move(child), resulting);
      stack.pop_back();
      group_cost[static_cast<size_t>(cs.group)] -= cs.cost;
    }
  }
};

}  // namespace

ExactMinMaxResult exact_min_max_cover(const setcover::SetSystem& sys,
                                      const BbLimits& limits) {
  Searcher s(sys, limits);
  s.sets_of.assign(static_cast<size_t>(sys.n_elements()), {});
  for (int j = 0; j < sys.n_sets(); ++j) {
    sys.set(j).members.for_each(
        [&](int e) { s.sets_of[static_cast<size_t>(e)].push_back(j); });
  }

  // Warm start from the SCG approximation.
  const auto scg = setcover::scg_solve(sys);
  if (scg.feasible) {
    s.best_max = scg.max_group_cost;
    s.best_chosen = scg.chosen;
  }

  s.dfs(sys.coverable(), 0.0);

  ExactMinMaxResult res;
  res.chosen = std::move(s.best_chosen);
  res.max_group_cost =
      s.best_max == std::numeric_limits<double>::infinity() ? 0.0 : s.best_max;
  res.status = s.clock.status();
  res.nodes = s.clock.nodes();
  return res;
}

}  // namespace wmcast::exact
