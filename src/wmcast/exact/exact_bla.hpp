// Exact min-max group cover (optimal BLA): cover every coverable element
// while minimizing the maximum summed set cost within any group (AP).
#pragma once

#include <vector>

#include "wmcast/exact/bb.hpp"
#include "wmcast/setcover/set_system.hpp"

namespace wmcast::exact {

struct ExactMinMaxResult {
  std::vector<int> chosen;
  double max_group_cost = 0.0;
  BbStatus status = BbStatus::kOptimal;
  int64_t nodes = 0;
};

ExactMinMaxResult exact_min_max_cover(const setcover::SetSystem& sys,
                                      const BbLimits& limits = {});

}  // namespace wmcast::exact
