// Exact minimum-cost set cover (optimal MLA). Branch and bound over the
// element with the fewest remaining covering sets, with an additive
// cost-share lower bound and dominated-set elimination.
#pragma once

#include <vector>

#include "wmcast/exact/bb.hpp"
#include "wmcast/setcover/set_system.hpp"

namespace wmcast::exact {

struct ExactCoverResult {
  std::vector<int> chosen;
  double cost = 0.0;
  BbStatus status = BbStatus::kOptimal;
  int64_t nodes = 0;
};

/// Minimum total cost family of sets covering every coverable element.
/// (Uncoverable elements are ignored, matching the WLAN semantics where a
/// user out of everyone's range cannot be served by any algorithm.)
ExactCoverResult exact_min_cost_cover(const setcover::SetSystem& sys,
                                      const BbLimits& limits = {});

}  // namespace wmcast::exact
