// CPLEX-LP-format emitters for the three ILPs (the formulations the paper
// solved to produce Fig. 12). Useful for validating our exact B&B solvers
// against an external MILP solver, and as executable documentation of the
// optimization models.
#pragma once

#include <span>
#include <string>

#include "wmcast/setcover/set_system.hpp"

namespace wmcast::exact {

/// min sum_j c_j x_j  s.t.  sum_{j: e in S_j} x_j >= 1 for all coverable e.
std::string write_mla_lp(const setcover::SetSystem& sys);

/// min z  s.t. cover constraints and sum_{j in G_i} c_j x_j <= z for all i.
std::string write_bla_lp(const setcover::SetSystem& sys);

/// max sum_e y_e  s.t.  y_e <= sum_{j: e in S_j} x_j,
///                      sum_{j in G_i} c_j x_j <= B_i.
std::string write_mnu_lp(const setcover::SetSystem& sys,
                         std::span<const double> group_budgets);

}  // namespace wmcast::exact
