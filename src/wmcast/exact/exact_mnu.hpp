// Exact budgeted maximum coverage with group budgets (optimal MNU): choose
// sets maximizing the number of covered elements subject to each group's
// summed cost staying within its budget.
#pragma once

#include <span>
#include <vector>

#include "wmcast/exact/bb.hpp"
#include "wmcast/setcover/set_system.hpp"

namespace wmcast::exact {

struct ExactMnuResult {
  std::vector<int> chosen;
  int covered = 0;
  BbStatus status = BbStatus::kOptimal;
  int64_t nodes = 0;
};

/// One budget per group. Sets whose own cost exceeds their group budget can
/// never be picked and are ignored.
ExactMnuResult exact_max_coverage(const setcover::SetSystem& sys,
                                  std::span<const double> group_budgets,
                                  const BbLimits& limits = {});

ExactMnuResult exact_max_coverage_uniform(const setcover::SetSystem& sys, double budget,
                                          const BbLimits& limits = {});

}  // namespace wmcast::exact
