#include "wmcast/exact/dual_bound.hpp"

#include <algorithm>
#include <limits>

#include "wmcast/util/assert.hpp"

namespace wmcast::exact {

DualBound set_cover_dual_ascent(const setcover::SetSystem& sys) {
  DualBound res;
  res.price.assign(static_cast<size_t>(sys.n_elements()), 0.0);

  std::vector<std::vector<int>> sets_of(static_cast<size_t>(sys.n_elements()));
  for (int j = 0; j < sys.n_sets(); ++j) {
    sys.set(j).members.for_each(
        [&](int e) { sets_of[static_cast<size_t>(e)].push_back(j); });
  }
  std::vector<double> slack(static_cast<size_t>(sys.n_sets()));
  for (int j = 0; j < sys.n_sets(); ++j) slack[static_cast<size_t>(j)] = sys.set(j).cost;

  // Element order: fewest containing sets first (scarce elements first grabs
  // slack where competition is lowest — the classic ascent heuristic).
  std::vector<int> elements = sys.coverable().to_indices();
  std::sort(elements.begin(), elements.end(), [&](int a, int b) {
    const size_t ka = sets_of[static_cast<size_t>(a)].size();
    const size_t kb = sets_of[static_cast<size_t>(b)].size();
    return ka != kb ? ka < kb : a < b;
  });

  for (const int e : elements) {
    double raise = std::numeric_limits<double>::infinity();
    for (const int j : sets_of[static_cast<size_t>(e)]) {
      raise = std::min(raise, slack[static_cast<size_t>(j)]);
    }
    if (raise <= 0.0) continue;  // some containing set is already tight
    res.price[static_cast<size_t>(e)] = raise;
    res.lower_bound += raise;
    for (const int j : sets_of[static_cast<size_t>(e)]) {
      slack[static_cast<size_t>(j)] -= raise;
    }
  }

  for (int j = 0; j < sys.n_sets(); ++j) {
    if (slack[static_cast<size_t>(j)] <= 1e-12) res.tight_sets.push_back(j);
  }
  // Dual ascent terminates with every coverable element contained in some
  // tight set (otherwise its price could still rise), so tight_sets covers.
  return res;
}

}  // namespace wmcast::exact
