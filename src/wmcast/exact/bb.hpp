// Shared scaffolding for the exact branch-and-bound solvers that stand in for
// the paper's ILP runs (Fig. 12). Each solver is exact when it finishes within
// the limits; otherwise it reports the best incumbent and a truncated status.
#pragma once

#include <chrono>
#include <cstdint>

namespace wmcast::exact {

struct BbLimits {
  int64_t max_nodes = 50'000'000;
  double time_limit_s = 10.0;
};

enum class BbStatus {
  kOptimal,    // search space exhausted: incumbent is optimal
  kNodeLimit,  // stopped early: incumbent is a valid but unproven solution
  kTimeLimit,
};

/// Node/time accounting used by every solver. Time is only sampled every 1024
/// nodes to keep the hot path cheap.
class BbClock {
 public:
  explicit BbClock(const BbLimits& limits)
      : limits_(limits), start_(std::chrono::steady_clock::now()) {}

  /// Registers one node; returns false when a limit was hit.
  bool tick() {
    ++nodes_;
    if (nodes_ >= limits_.max_nodes) {
      status_ = BbStatus::kNodeLimit;
      return false;
    }
    if ((nodes_ & 1023) == 0) {
      const std::chrono::duration<double> elapsed =
          std::chrono::steady_clock::now() - start_;
      if (elapsed.count() >= limits_.time_limit_s) {
        status_ = BbStatus::kTimeLimit;
        return false;
      }
    }
    return status_ == BbStatus::kOptimal;
  }

  bool exhausted() const { return status_ != BbStatus::kOptimal; }
  BbStatus status() const { return status_; }
  int64_t nodes() const { return nodes_; }

 private:
  BbLimits limits_;
  std::chrono::steady_clock::time_point start_;
  int64_t nodes_ = 0;
  BbStatus status_ = BbStatus::kOptimal;
};

}  // namespace wmcast::exact
