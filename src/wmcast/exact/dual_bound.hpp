// Dual-ascent lower bounds. The LP dual of (fractional) set cover assigns
// each element a price y_e with sum_{e in S} y_e <= c(S) for every set; any
// feasible pricing certifies sum_e y_e <= OPT. Dual ascent raises prices
// greedily, giving a cheap certified lower bound that
//  * sandwiches the greedy/exact MLA results in tests and benches, and
//  * reports an optimality gap for B&B runs that hit their time limit
//    (paper Fig. 12 at larger sizes).
#pragma once

#include "wmcast/setcover/set_system.hpp"

namespace wmcast::exact {

struct DualBound {
  /// Certified lower bound on the minimum-cost cover (sum of prices).
  double lower_bound = 0.0;
  /// Element prices (dual variables); zero for uncoverable elements.
  std::vector<double> price;
  /// Sets whose dual constraint is tight (price-saturated) — these form a
  /// cover when dual ascent finishes, which upper-bounds the gap.
  std::vector<int> tight_sets;
};

/// Greedy dual ascent for weighted set cover: processes elements in order of
/// scarcest slack and raises each price to the minimum remaining slack of
/// the sets containing it.
DualBound set_cover_dual_ascent(const setcover::SetSystem& sys);

}  // namespace wmcast::exact
