#include "wmcast/exact/lp_writer.hpp"

#include <sstream>

#include "wmcast/util/assert.hpp"

namespace wmcast::exact {

namespace {

void emit_cover_constraints(const setcover::SetSystem& sys, std::ostringstream& out) {
  std::vector<std::vector<int>> sets_of(static_cast<size_t>(sys.n_elements()));
  for (int j = 0; j < sys.n_sets(); ++j) {
    sys.set(j).members.for_each(
        [&](int e) { sets_of[static_cast<size_t>(e)].push_back(j); });
  }
  sys.coverable().for_each([&](int e) {
    out << " cover_u" << e << ":";
    for (const int j : sets_of[static_cast<size_t>(e)]) out << " + x" << j;
    out << " >= 1\n";
  });
}

void emit_binaries(int n_sets, std::ostringstream& out, const char* extra = nullptr) {
  out << "Binary\n";
  for (int j = 0; j < n_sets; ++j) out << " x" << j << "\n";
  if (extra != nullptr) out << extra;
}

}  // namespace

std::string write_mla_lp(const setcover::SetSystem& sys) {
  std::ostringstream out;
  out << "\\ MLA: minimum total multicast load (weighted set cover)\n";
  out << "Minimize\n obj:";
  for (int j = 0; j < sys.n_sets(); ++j) out << " + " << sys.set(j).cost << " x" << j;
  out << "\nSubject To\n";
  emit_cover_constraints(sys, out);
  emit_binaries(sys.n_sets(), out);
  out << "End\n";
  return out.str();
}

std::string write_bla_lp(const setcover::SetSystem& sys) {
  std::ostringstream out;
  out << "\\ BLA: minimize the maximum per-AP multicast load\n";
  out << "Minimize\n obj: z\n";
  out << "Subject To\n";
  emit_cover_constraints(sys, out);
  for (int g = 0; g < sys.n_groups(); ++g) {
    if (sys.group_sets(g).empty()) continue;
    out << " load_a" << g << ":";
    for (const int j : sys.group_sets(g)) out << " + " << sys.set(j).cost << " x" << j;
    out << " - z <= 0\n";
  }
  emit_binaries(sys.n_sets(), out);
  out << "End\n";
  return out.str();
}

std::string write_mnu_lp(const setcover::SetSystem& sys,
                         std::span<const double> group_budgets) {
  util::require(static_cast<int>(group_budgets.size()) == sys.n_groups(),
                "write_mnu_lp: one budget per group required");
  std::ostringstream out;
  out << "\\ MNU: maximize satisfied multicast users under per-AP budgets\n";
  out << "Maximize\n obj:";
  sys.coverable().for_each([&](int e) { out << " + y" << e; });
  out << "\nSubject To\n";

  std::vector<std::vector<int>> sets_of(static_cast<size_t>(sys.n_elements()));
  for (int j = 0; j < sys.n_sets(); ++j) {
    sys.set(j).members.for_each(
        [&](int e) { sets_of[static_cast<size_t>(e)].push_back(j); });
  }
  sys.coverable().for_each([&](int e) {
    out << " served_u" << e << ": y" << e;
    for (const int j : sets_of[static_cast<size_t>(e)]) out << " - x" << j;
    out << " <= 0\n";
  });
  for (int g = 0; g < sys.n_groups(); ++g) {
    if (sys.group_sets(g).empty()) continue;
    out << " budget_a" << g << ":";
    for (const int j : sys.group_sets(g)) out << " + " << sys.set(j).cost << " x" << j;
    out << " <= " << group_budgets[static_cast<size_t>(g)] << "\n";
  }

  std::ostringstream extra;
  sys.coverable().for_each([&](int e) { extra << " y" << e << "\n"; });
  out << "Binary\n";
  for (int j = 0; j < sys.n_sets(); ++j) out << " x" << j << "\n";
  out << extra.str();
  out << "End\n";
  return out.str();
}

}  // namespace wmcast::exact
