// The layering algorithm for weighted set cover (Vazirani §2.2), which the
// paper points to in §6.1: "the layer algorithm, which is bounded by a
// constant, can also be used if for any user the number of APs that it can
// associate with is bounded by a constant". It is an f-approximation, where
// f is the maximum element frequency — for the WLAN reduction, the largest
// number of candidate (AP, rate) transmissions any one user appears in.
//
// Each layer peels off a degree-weighted portion of every residual set's
// cost; sets whose residual cost hits zero join the cover, covered elements
// leave the ground set, and the next layer recurses on what remains.
#pragma once

#include <vector>

#include "wmcast/setcover/set_system.hpp"

namespace wmcast::setcover {

struct LayeringResult {
  std::vector<int> chosen;   // sets picked across all layers
  util::DynBitset covered;
  double total_cost = 0.0;
  int layers = 0;
  bool complete = false;     // every coverable element covered
};

/// Runs the layering algorithm on the whole coverable ground set.
LayeringResult layered_set_cover(const SetSystem& sys);

/// The approximation factor the layering algorithm guarantees on `sys`:
/// the maximum number of sets any single coverable element appears in.
int max_element_frequency(const SetSystem& sys);

}  // namespace wmcast::setcover
