#include "wmcast/setcover/reference.hpp"

#include <algorithm>
#include <cmath>

#include "wmcast/core/solve.hpp"
#include "wmcast/util/assert.hpp"
#include "wmcast/util/fp.hpp"

namespace wmcast::setcover {

GreedyCoverResult greedy_set_cover_reference(const SetSystem& sys,
                                             const util::DynBitset* restrict_to) {
  util::DynBitset remaining = sys.coverable();
  if (restrict_to != nullptr) remaining.and_assign(*restrict_to);

  GreedyCoverResult res;
  res.covered = util::DynBitset(sys.n_elements());

  while (remaining.any()) {
    int best = -1;
    int best_gain = 0;
    for (int j = 0; j < sys.n_sets(); ++j) {
      const int gain = sys.set(j).members.and_count(remaining);
      if (gain <= 0) continue;
      if (best == -1 || core::better_pick(gain, sys.set(j).cost, j, best_gain,
                                          sys.set(best).cost, best)) {
        best = j;
        best_gain = gain;
      }
    }
    if (best == -1) break;
    res.chosen.push_back(best);
    res.total_cost += sys.set(best).cost;
    res.covered.or_assign(sys.set(best).members);
    remaining.andnot_assign(sys.set(best).members);
  }
  res.complete = remaining.none();
  return res;
}

McgResult mcg_greedy_reference(const SetSystem& sys, std::span<const double> group_budgets,
                               const util::DynBitset* restrict_to) {
  util::require(static_cast<int>(group_budgets.size()) == sys.n_groups(),
                "mcg_greedy_reference: one budget per group required");

  util::DynBitset remaining = sys.coverable();
  if (restrict_to != nullptr) remaining.and_assign(*restrict_to);
  const util::DynBitset target = remaining;

  std::vector<double> group_cost(static_cast<size_t>(sys.n_groups()), 0.0);

  McgResult res;
  res.covered_h = util::DynBitset(sys.n_elements());

  while (remaining.any()) {
    int best = -1;
    int best_gain = 0;
    for (int j = 0; j < sys.n_sets(); ++j) {
      const auto& s = sys.set(j);
      const auto g = static_cast<size_t>(s.group);
      if (!util::fits_budget(s.cost, group_budgets[g])) continue;  // never fits alone
      if (util::budget_exhausted(group_cost[g], group_budgets[g])) continue;
      const int gain = s.members.and_count(remaining);
      if (gain <= 0) continue;
      if (best == -1 || core::better_pick(gain, s.cost, j, best_gain,
                                          sys.set(best).cost, best)) {
        best = j;
        best_gain = gain;
      }
    }
    if (best == -1) break;
    const auto& s = sys.set(best);
    const auto g = static_cast<size_t>(s.group);
    group_cost[g] += s.cost;
    res.h.push_back(best);
    res.violator.push_back(util::exceeds_budget(group_cost[g], group_budgets[g]));
    res.covered_h.or_assign(s.members);
    remaining.andnot_assign(s.members);
  }
  res.covered_h.and_assign(target);

  util::DynBitset cov1(sys.n_elements());
  util::DynBitset cov2(sys.n_elements());
  for (size_t k = 0; k < res.h.size(); ++k) {
    if (res.violator[k]) {
      res.h2.push_back(res.h[k]);
      cov2.or_assign(sys.set(res.h[k]).members);
    } else {
      res.h1.push_back(res.h[k]);
      cov1.or_assign(sys.set(res.h[k]).members);
    }
  }
  cov1.and_assign(target);
  cov2.and_assign(target);
  if (cov2.count() > cov1.count()) {
    res.chosen = res.h2;
    res.covered = std::move(cov2);
  } else {
    res.chosen = res.h1;
    res.covered = std::move(cov1);
  }
  return res;
}

namespace {

ScgResult scg_run_at_budget_reference(const SetSystem& sys, double bstar, int max_passes,
                                      bool carry_budgets) {
  ScgResult res;
  res.bstar = bstar;
  res.covered = util::DynBitset(sys.n_elements());
  res.group_cost.assign(static_cast<size_t>(sys.n_groups()), 0.0);

  std::vector<double> pass_budget(static_cast<size_t>(sys.n_groups()), bstar);
  util::DynBitset remaining = sys.coverable();
  for (int pass = 0; pass < max_passes && remaining.any(); ++pass) {
    if (carry_budgets) {
      for (int g = 0; g < sys.n_groups(); ++g) {
        pass_budget[static_cast<size_t>(g)] =
            std::max(0.0, bstar - res.group_cost[static_cast<size_t>(g)]);
      }
    }
    const McgResult mcg = mcg_greedy_reference(sys, pass_budget, &remaining);
    if (mcg.covered.none()) break;
    ++res.passes;
    for (const int j : mcg.chosen) {
      res.chosen.push_back(j);
      res.group_cost[static_cast<size_t>(sys.set(j).group)] += sys.set(j).cost;
    }
    res.covered.or_assign(mcg.covered);
    remaining.andnot_assign(mcg.covered);
  }
  res.feasible = remaining.none();
  res.max_group_cost =
      res.group_cost.empty()
          ? 0.0
          : *std::max_element(res.group_cost.begin(), res.group_cost.end());
  return res;
}

bool scg_better_reference(const ScgResult& a, const ScgResult& b) {
  if (a.feasible != b.feasible) return a.feasible;
  if (!a.feasible) return a.covered.count() > b.covered.count();
  return a.max_group_cost < b.max_group_cost;
}

}  // namespace

ScgResult scg_solve_reference(const SetSystem& sys, const ScgParams& params) {
  util::require(params.budget_cap > 0.0, "scg_solve_reference: budget cap must be positive");
  util::require(params.grid_points >= 2, "scg_solve_reference: need at least two grid points");

  const int n = std::max(1, sys.coverable().count());
  const int max_passes =
      static_cast<int>(std::ceil(std::log(n) / std::log(8.0 / 7.0))) + 8;

  const double lo = std::max(sys.min_feasible_budget(), 1e-9);
  const double hi = std::max(params.budget_cap, lo);

  ScgResult best = scg_run_at_budget_reference(sys, lo, max_passes, params.carry_budgets);
  double largest_infeasible = best.feasible ? 0.0 : lo;

  const double ratio = hi / lo;
  for (int k = 1; k < params.grid_points; ++k) {
    const double b =
        lo * std::pow(ratio, static_cast<double>(k) / (params.grid_points - 1));
    ScgResult r = scg_run_at_budget_reference(sys, b, max_passes, params.carry_budgets);
    if (!r.feasible) largest_infeasible = std::max(largest_infeasible, b);
    if (scg_better_reference(r, best)) best = std::move(r);
  }

  if (best.feasible) {
    double infeasible_lo = largest_infeasible;
    double feasible_hi = best.bstar;
    for (int step = 0; step < params.refine_steps; ++step) {
      if (feasible_hi - infeasible_lo < 1e-6) break;
      const double mid = infeasible_lo <= 0.0 ? feasible_hi / 2
                                              : 0.5 * (infeasible_lo + feasible_hi);
      ScgResult r = scg_run_at_budget_reference(sys, mid, max_passes, params.carry_budgets);
      if (r.feasible) {
        feasible_hi = mid;
        if (scg_better_reference(r, best)) best = std::move(r);
      } else {
        infeasible_lo = mid;
      }
    }
  }
  return best;
}

}  // namespace wmcast::setcover
