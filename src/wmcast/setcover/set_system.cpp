#include "wmcast/setcover/set_system.hpp"

#include <algorithm>
#include <limits>

#include "wmcast/util/assert.hpp"

namespace wmcast::setcover {

SetSystem::SetSystem(int n_elements, int n_groups, std::vector<CandidateSet> sets)
    : n_elements_(n_elements),
      n_groups_(n_groups),
      sets_(std::move(sets)),
      group_sets_(static_cast<size_t>(n_groups)),
      coverable_(n_elements) {
  util::require(n_elements >= 0, "SetSystem: negative universe");
  util::require(n_groups >= 0, "SetSystem: negative group count");
  for (int j = 0; j < n_sets(); ++j) {
    const auto& s = sets_[static_cast<size_t>(j)];
    util::require(s.members.size() == n_elements_, "SetSystem: member universe mismatch");
    util::require(s.cost > 0.0, "SetSystem: set costs must be positive");
    util::require(s.group >= 0 && s.group < n_groups_, "SetSystem: invalid group");
    group_sets_[static_cast<size_t>(s.group)].push_back(j);
    coverable_.or_assign(s.members);
    max_cost_ = std::max(max_cost_, s.cost);
  }

  // min over sets containing e of cost, maximized over coverable e.
  std::vector<double> min_cost(static_cast<size_t>(n_elements_),
                               std::numeric_limits<double>::infinity());
  for (const auto& s : sets_) {
    s.members.for_each([&](int e) {
      min_cost[static_cast<size_t>(e)] = std::min(min_cost[static_cast<size_t>(e)], s.cost);
    });
  }
  min_feasible_budget_ = 0.0;
  coverable_.for_each([&](int e) {
    min_feasible_budget_ = std::max(min_feasible_budget_, min_cost[static_cast<size_t>(e)]);
  });
}

core::CoverageEngine to_engine(const SetSystem& sys) {
  core::CoverageEngine eng;
  eng.reset(sys.n_elements(), sys.n_groups());
  std::vector<int32_t> members;
  for (int j = 0; j < sys.n_sets(); ++j) {
    const auto& s = sys.set(j);
    members.clear();
    s.members.for_each([&](int e) { members.push_back(e); });
    eng.add_set(s.group, s.session, s.tx_rate, s.cost, members);
  }
  return eng;
}

}  // namespace wmcast::setcover
