#include "wmcast/setcover/layering.hpp"

#include <algorithm>
#include <utility>

#include "wmcast/core/solve.hpp"

namespace wmcast::setcover {

int max_element_frequency(const SetSystem& sys) {
  std::vector<int> freq(static_cast<size_t>(sys.n_elements()), 0);
  for (int j = 0; j < sys.n_sets(); ++j) {
    sys.set(j).members.for_each([&](int e) { ++freq[static_cast<size_t>(e)]; });
  }
  int f = 0;
  sys.coverable().for_each(
      [&](int e) { f = std::max(f, freq[static_cast<size_t>(e)]); });
  return f;
}

LayeringResult layered_set_cover(const SetSystem& sys) {
  const core::CoverageEngine eng = to_engine(sys);
  core::SolveWorkspace ws;
  core::LayeringResult r = core::layered_cover(eng, ws);

  LayeringResult res;
  res.chosen = std::move(r.chosen);
  res.covered = std::move(r.covered);
  res.total_cost = r.total_cost;
  res.layers = r.layers;
  res.complete = r.complete;
  return res;
}

}  // namespace wmcast::setcover
