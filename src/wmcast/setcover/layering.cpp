#include "wmcast/setcover/layering.hpp"

#include <algorithm>
#include <limits>

#include "wmcast/util/assert.hpp"

namespace wmcast::setcover {

namespace {
constexpr double kTol = 1e-12;
}

int max_element_frequency(const SetSystem& sys) {
  std::vector<int> freq(static_cast<size_t>(sys.n_elements()), 0);
  for (int j = 0; j < sys.n_sets(); ++j) {
    sys.set(j).members.for_each([&](int e) { ++freq[static_cast<size_t>(e)]; });
  }
  int f = 0;
  sys.coverable().for_each(
      [&](int e) { f = std::max(f, freq[static_cast<size_t>(e)]); });
  return f;
}

LayeringResult layered_set_cover(const SetSystem& sys) {
  LayeringResult res;
  res.covered = util::DynBitset(sys.n_elements());

  util::DynBitset remaining = sys.coverable();
  std::vector<double> residual(static_cast<size_t>(sys.n_sets()));
  std::vector<bool> taken(static_cast<size_t>(sys.n_sets()), false);
  for (int j = 0; j < sys.n_sets(); ++j) residual[static_cast<size_t>(j)] = sys.set(j).cost;

  while (remaining.any()) {
    // epsilon = min over live sets of residual cost per uncovered element.
    double eps = std::numeric_limits<double>::infinity();
    bool any_live = false;
    for (int j = 0; j < sys.n_sets(); ++j) {
      if (taken[static_cast<size_t>(j)]) continue;
      const int deg = sys.set(j).members.and_count(remaining);
      if (deg <= 0) continue;
      any_live = true;
      eps = std::min(eps, residual[static_cast<size_t>(j)] / deg);
    }
    if (!any_live) break;  // cannot make progress (shouldn't happen: remaining ⊆ coverable)
    ++res.layers;

    // Peel the layer: every live set pays eps per uncovered element it holds;
    // exhausted sets join the cover.
    bool picked_any = false;
    for (int j = 0; j < sys.n_sets(); ++j) {
      if (taken[static_cast<size_t>(j)]) continue;
      const int deg = sys.set(j).members.and_count(remaining);
      if (deg <= 0) continue;
      residual[static_cast<size_t>(j)] -= eps * deg;
      if (residual[static_cast<size_t>(j)] <= kTol) {
        taken[static_cast<size_t>(j)] = true;
        picked_any = true;
        res.chosen.push_back(j);
        res.total_cost += sys.set(j).cost;
        res.covered.or_assign(sys.set(j).members);
      }
    }
    WMCAST_ASSERT(picked_any, "layering: a layer must exhaust at least one set");
    remaining.andnot_assign(res.covered);
  }

  res.covered.and_assign(sys.coverable());
  res.complete = !remaining.any();
  return res;
}

}  // namespace wmcast::setcover
