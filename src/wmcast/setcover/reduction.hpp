// The paper's reduction (Theorems 1/3/5): a WLAN association instance becomes
// a grouped, weighted set system. For every AP a, session s, and useful
// transmission rate r, the candidate set is
//     { u : user u requests s and link_rate(a, u) >= r }
// with cost session_rate(s) / r, in group a.
//
// Only link-rate values that actually occur on (a, s) are enumerated: any
// other transmission rate is dominated by the next-higher occurring rate
// (same members, lower cost).
#pragma once

#include "wmcast/setcover/set_system.hpp"
#include "wmcast/wlan/scenario.hpp"

namespace wmcast::setcover {

/// Builds the set system for `sc`.
/// multi_rate=false restricts every multicast to the scenario's basic rate
/// (802.11-standard broadcast), yielding one candidate set per (AP, session).
SetSystem build_set_system(const wlan::Scenario& sc, bool multi_rate = true);

}  // namespace wmcast::setcover
