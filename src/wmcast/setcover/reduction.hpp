// The paper's reduction (Theorems 1/3/5): a WLAN association instance becomes
// a grouped, weighted set system. For every AP a, session s, and useful
// transmission rate r, the candidate set is
//     { u : user u requests s and link_rate(a, u) >= r }
// with cost session_rate(s) / r, in group a.
//
// Only link-rate values that actually occur on (a, s) are enumerated: any
// other transmission rate is dominated by the next-higher occurring rate
// (same members, lower cost).
#pragma once

#include "wmcast/core/engine.hpp"
#include "wmcast/setcover/set_system.hpp"
#include "wmcast/wlan/scenario.hpp"

namespace wmcast::setcover {

/// Builds the set system for `sc`.
/// multi_rate=false restricts every multicast to the scenario's basic rate
/// (802.11-standard broadcast), yielding one candidate set per (AP, session).
SetSystem build_set_system(const wlan::Scenario& sc, bool multi_rate = true);

/// Source adapter exposing a wlan::Scenario to the coverage engine: elements
/// are users, groups are APs. Engines built through it hold exactly the sets
/// of build_set_system, with ids in the same order, so the two build paths
/// are interchangeable — and update_groups(src, dirty_aps) re-projects only
/// the named APs when the scenario is replaced by a perturbed successor.
class ScenarioSource {
 public:
  explicit ScenarioSource(const wlan::Scenario& sc) : sc_(&sc) {}

  int n_elements() const { return sc_->n_users(); }
  int n_groups() const { return sc_->n_aps(); }
  int n_sessions() const { return sc_->n_sessions(); }
  double session_rate(int s) const { return sc_->session_rate(s); }
  int element_session(int e) const { return sc_->user_session(e); }
  bool element_active(int) const { return true; }
  double link_rate(int g, int e) const { return sc_->link_rate(g, e); }
  double basic_rate() const { return sc_->basic_rate(); }

  template <typename Fn>
  void for_each_element_of_group(int g, Fn&& fn) const {
    for (const int u : sc_->users_of_ap(g)) fn(u);
  }

  /// Paired CSR row (same user order as for_each_element_of_group) — lets the
  /// engine skip the per-user link_rate binary search.
  template <typename Fn>
  void for_each_link_of_group(int g, Fn&& fn) const {
    const auto users = sc_->users_of_ap(g);
    const double* rates = sc_->rates_of_ap(g);
    for (size_t i = 0; i < users.size(); ++i) fn(users[i], rates[i]);
  }

 private:
  const wlan::Scenario* sc_;
};

/// Builds a CoverageEngine directly from the scenario — the cached,
/// incrementally-updatable counterpart of build_set_system (no per-set
/// bitsets are materialized).
core::CoverageEngine build_engine(const wlan::Scenario& sc, bool multi_rate = true);

}  // namespace wmcast::setcover
