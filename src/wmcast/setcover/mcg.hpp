// Centralized MNU (Fig. 3 of the paper): the Chekuri–Kumar greedy for
// Maximum Coverage with Group Budgets, cost version, with no overall budget,
// followed by the H1/H2 split. 8-approximation (Theorem 2).
#pragma once

#include <span>
#include <vector>

#include "wmcast/setcover/set_system.hpp"
#include "wmcast/util/bitset.hpp"

namespace wmcast::setcover {

struct McgResult {
  /// Every set the greedy added (paper's H), in selection order.
  std::vector<int> h;
  /// violator[k] is true when h[k] pushed its group's cost past the budget
  /// (paper's H2 membership).
  std::vector<bool> violator;

  std::vector<int> h1;  // budget-respecting sets
  std::vector<int> h2;  // at most one violator per group
  /// The output: whichever of h1 / h2 covers more target elements.
  std::vector<int> chosen;
  /// Elements of the target covered by `chosen`.
  util::DynBitset covered;
  /// Elements of the target covered by the full h (diagnostics/tests).
  util::DynBitset covered_h;
};

/// Runs the MCG greedy against `group_budgets` (one entry per group).
/// If `restrict_to` is non-null only those elements count as coverage targets
/// (SCG runs the greedy repeatedly on the shrinking remainder).
///
/// Deviations from the verbatim pseudo-code, both documented in DESIGN.md:
///  * sets whose own cost exceeds their group budget are never selected (the
///    paper assumes c(S) <= B_i for the H2 feasibility argument);
///  * zero-gain sets are never selected (the literal pseudo-code could burn
///    group budgets on sets that cover nothing).
McgResult mcg_greedy(const SetSystem& sys, std::span<const double> group_budgets,
                     const util::DynBitset* restrict_to = nullptr);

/// Convenience: uniform budget for every group.
McgResult mcg_greedy_uniform(const SetSystem& sys, double budget,
                             const util::DynBitset* restrict_to = nullptr);

/// Greedy augmentation after the H1/H2 split: repeatedly adds the most
/// cost-effective set that (a) covers something new and (b) fits entirely
/// within its group's remaining budget — no violators this time. Updates
/// `group_cost` and `covered` in place and returns the sets it added.
/// Coverage only grows and budgets stay respected, so running this after
/// the MCG greedy preserves the 8-approximation of Centralized MNU while
/// recovering coverage the discarded half left behind (practical refinement;
/// see DESIGN.md).
std::vector<int> mcg_augment(const SetSystem& sys, std::span<const double> group_budgets,
                             std::vector<double>& group_cost, util::DynBitset& covered,
                             const util::DynBitset* restrict_to = nullptr);

}  // namespace wmcast::setcover
