#include "wmcast/setcover/materialize.hpp"

#include "wmcast/util/assert.hpp"

namespace wmcast::setcover {

wlan::Association materialize(const wlan::Scenario& sc, const SetSystem& sys,
                              std::span<const int> chosen_sets) {
  util::require(sys.n_elements() == sc.n_users(), "materialize: universe mismatch");

  wlan::Association assoc = wlan::Association::none(sc.n_users());
  for (const int j : chosen_sets) {
    util::require(j >= 0 && j < sys.n_sets(), "materialize: invalid set index");
    const auto& s = sys.set(j);
    s.members.for_each([&](int u) {
      if (assoc.user_ap[static_cast<size_t>(u)] == wlan::kNoAp) {
        assoc.user_ap[static_cast<size_t>(u)] = s.ap;
      }
    });
  }
  return assoc;
}

}  // namespace wmcast::setcover
