#include "wmcast/setcover/materialize.hpp"

#include "wmcast/util/assert.hpp"

namespace wmcast::setcover {

wlan::Association materialize(const wlan::Scenario& sc, const SetSystem& sys,
                              std::span<const int> chosen_sets) {
  util::require(sys.n_elements() == sc.n_users(), "materialize: universe mismatch");

  wlan::Association assoc = wlan::Association::none(sc.n_users());
  for (const int j : chosen_sets) {
    util::require(j >= 0 && j < sys.n_sets(), "materialize: invalid set index");
    const auto& s = sys.set(j);
    s.members.for_each([&](int u) {
      if (assoc.user_ap[static_cast<size_t>(u)] == wlan::kNoAp) {
        assoc.user_ap[static_cast<size_t>(u)] = s.ap;
      }
    });
  }
  return assoc;
}

wlan::Association materialize(const wlan::Scenario& sc, const core::CoverageEngine& eng,
                              std::span<const int> chosen_sets) {
  util::require(eng.n_elements() == sc.n_users(), "materialize: universe mismatch");

  wlan::Association assoc = wlan::Association::none(sc.n_users());
  for (const int j : chosen_sets) {
    util::require(j >= 0 && j < eng.n_set_slots(), "materialize: invalid set index");
    const int a = eng.ap(j);
    for (const int32_t u : eng.members(j)) {
      if (assoc.user_ap[static_cast<size_t>(u)] == wlan::kNoAp) {
        assoc.user_ap[static_cast<size_t>(u)] = a;
      }
    }
  }
  return assoc;
}

}  // namespace wmcast::setcover
