#include "wmcast/setcover/greedy.hpp"

#include <queue>

#include "wmcast/util/assert.hpp"

namespace wmcast::setcover {

namespace {

struct HeapEntry {
  double ratio;  // gain / cost at the time of evaluation (upper bound)
  int set;

  bool operator<(const HeapEntry& o) const {
    // max-heap by ratio; deterministic tie-break on the set index.
    return ratio != o.ratio ? ratio < o.ratio : set > o.set;
  }
};

}  // namespace

GreedyCoverResult greedy_set_cover(const SetSystem& sys, const util::DynBitset* restrict_to) {
  util::DynBitset remaining = sys.coverable();
  if (restrict_to != nullptr) remaining.and_assign(*restrict_to);

  GreedyCoverResult res;
  res.covered = util::DynBitset(sys.n_elements());

  std::priority_queue<HeapEntry> heap;
  for (int j = 0; j < sys.n_sets(); ++j) {
    const auto& s = sys.set(j);
    const int gain = s.members.and_count(remaining);
    if (gain > 0) heap.push({gain / s.cost, j});
  }

  while (remaining.any() && !heap.empty()) {
    const HeapEntry top = heap.top();
    heap.pop();
    const auto& s = sys.set(top.set);
    const int gain = s.members.and_count(remaining);
    if (gain <= 0) continue;  // fully covered meanwhile; discard
    const double ratio = gain / s.cost;
    // Lazy re-evaluation: if the refreshed ratio still beats (or ties) the
    // next candidate's stale upper bound, the pick is the true argmax.
    if (!heap.empty() && ratio < heap.top().ratio) {
      heap.push({ratio, top.set});
      continue;
    }
    res.chosen.push_back(top.set);
    res.total_cost += s.cost;
    res.covered.or_assign(s.members);
    remaining.andnot_assign(s.members);
  }

  res.complete = remaining.none();
  return res;
}

}  // namespace wmcast::setcover
