#include "wmcast/setcover/greedy.hpp"

#include <utility>

#include "wmcast/core/solve.hpp"

namespace wmcast::setcover {

GreedyCoverResult greedy_set_cover(const SetSystem& sys, const util::DynBitset* restrict_to) {
  const core::CoverageEngine eng = to_engine(sys);
  core::SolveWorkspace ws;
  core::CoverResult r = core::greedy_cover(eng, ws, restrict_to);

  GreedyCoverResult res;
  res.chosen = std::move(r.chosen);
  res.covered = std::move(r.covered);
  res.total_cost = r.total_cost;
  res.complete = r.complete;
  return res;
}

}  // namespace wmcast::setcover
