// The combinatorial structure all three centralized algorithms operate on:
// a weighted set system over the users, with sets grouped by AP (the paper's
// MCG/SCG "groups"). Built from a wlan::Scenario by setcover::build_set_system
// (Theorems 1, 3 and 5 use the same construction).
#pragma once

#include <vector>

#include "wmcast/core/engine.hpp"
#include "wmcast/util/bitset.hpp"

namespace wmcast::setcover {

/// One candidate transmission: AP `ap` multicasting session `session` at PHY
/// rate `tx_rate` covers exactly `members` (the requesters with link rate >=
/// tx_rate) at airtime cost `cost` = stream_rate / tx_rate.
struct CandidateSet {
  util::DynBitset members;
  double cost = 0.0;
  int group = 0;  // == ap for WLAN-derived systems
  int ap = 0;
  int session = 0;
  double tx_rate = 0.0;
};

/// Immutable weighted, grouped set system over ground set {0..n_elements-1}.
class SetSystem {
 public:
  SetSystem(int n_elements, int n_groups, std::vector<CandidateSet> sets);

  int n_elements() const { return n_elements_; }
  int n_groups() const { return n_groups_; }
  int n_sets() const { return static_cast<int>(sets_.size()); }

  const CandidateSet& set(int j) const { return sets_[static_cast<size_t>(j)]; }
  const std::vector<CandidateSet>& sets() const { return sets_; }

  /// Indices of the sets belonging to group g.
  const std::vector<int>& group_sets(int g) const {
    return group_sets_[static_cast<size_t>(g)];
  }

  /// Elements covered by at least one set; elements outside are uncoverable.
  const util::DynBitset& coverable() const { return coverable_; }

  /// Largest single-set cost (the paper's c_max, used to bound B* in SCG).
  double max_set_cost() const { return max_cost_; }
  /// max over coverable elements e of min cost of a set containing e — a
  /// lower bound on any feasible per-group budget in SCG.
  double min_feasible_budget() const { return min_feasible_budget_; }

 private:
  int n_elements_;
  int n_groups_;
  std::vector<CandidateSet> sets_;
  std::vector<std::vector<int>> group_sets_;
  util::DynBitset coverable_;
  double max_cost_ = 0.0;
  double min_feasible_budget_ = 0.0;
};

/// Flattens the system into a fresh CoverageEngine. Set ids equal the
/// system's set indices, so engine-side results translate one-to-one.
core::CoverageEngine to_engine(const SetSystem& sys);

}  // namespace wmcast::setcover
