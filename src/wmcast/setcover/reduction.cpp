#include "wmcast/setcover/reduction.hpp"

#include <algorithm>
#include <utility>

#include "wmcast/util/assert.hpp"

namespace wmcast::setcover {

SetSystem build_set_system(const wlan::Scenario& sc, bool multi_rate) {
  std::vector<CandidateSet> sets;

  // (rate, user) pairs for one (ap, session), sorted by descending rate.
  std::vector<std::pair<double, int>> requesters;

  for (int a = 0; a < sc.n_aps(); ++a) {
    for (int s = 0; s < sc.n_sessions(); ++s) {
      requesters.clear();
      const auto members_of_a = sc.users_of_ap(a);
      const double* rates_of_a = sc.rates_of_ap(a);
      for (size_t i = 0; i < members_of_a.size(); ++i) {
        const int u = members_of_a[i];
        if (sc.user_session(u) == s) requesters.emplace_back(rates_of_a[i], u);
      }
      if (requesters.empty()) continue;

      if (!multi_rate) {
        // Single candidate: everyone in range, served at the basic rate.
        CandidateSet cs;
        cs.members = util::DynBitset(sc.n_users());
        for (const auto& [r, u] : requesters) cs.members.set(u);
        cs.tx_rate = sc.basic_rate();
        cs.cost = sc.session_rate(s) / cs.tx_rate;
        cs.group = cs.ap = a;
        cs.session = s;
        sets.push_back(std::move(cs));
        continue;
      }

      std::sort(requesters.begin(), requesters.end(),
                [](const auto& x, const auto& y) { return x.first > y.first; });

      // One candidate per distinct occurring rate; members accumulate as the
      // rate drops. Equal consecutive rates extend the same candidate.
      util::DynBitset members(sc.n_users());
      size_t i = 0;
      while (i < requesters.size()) {
        const double rate = requesters[i].first;
        while (i < requesters.size() && requesters[i].first == rate) {
          members.set(requesters[i].second);
          ++i;
        }
        CandidateSet cs;
        cs.members = members;
        cs.tx_rate = rate;
        cs.cost = sc.session_rate(s) / rate;
        cs.group = cs.ap = a;
        cs.session = s;
        sets.push_back(std::move(cs));
      }
    }
  }
  return SetSystem(sc.n_users(), sc.n_aps(), std::move(sets));
}

core::CoverageEngine build_engine(const wlan::Scenario& sc, bool multi_rate) {
  core::CoverageEngine eng;
  eng.build_full(ScenarioSource(sc), multi_rate);
  return eng;
}

}  // namespace wmcast::setcover
