// Centralized BLA (Fig. 6 of the paper): Set Cover with Group Budgets. Guess
// the optimal max-group-cost B*, then repeatedly run the MCG greedy with a
// per-group budget of B* on the not-yet-covered elements; each pass covers a
// constant fraction, so log_{8/7}(n)+1 passes suffice (Theorem 4). B* is
// searched over a geometric grid between the instance lower bound and 1,
// refined by bisection, and the best feasible result is kept.
#pragma once

#include <vector>

#include "wmcast/setcover/set_system.hpp"
#include "wmcast/util/bitset.hpp"

namespace wmcast::setcover {

struct ScgParams {
  /// Upper end of the B* search window (the paper uses 1, the whole airtime).
  double budget_cap = 1.0;
  /// Geometric grid points tried between the lower bound and budget_cap.
  int grid_points = 8;
  /// Bisection refinements after the grid scan.
  int refine_steps = 6;
  /// true (default): a group's spend carries over between MCG passes, so the
  /// final max group cost is bounded by B* itself and the B* search directly
  /// minimizes the objective. false: the paper's literal scheme — every pass
  /// gets a fresh budget of B* per group (final max bounded only by
  /// passes * B*, Theorem 4). Carrying over never violates the approximation
  /// guarantee because the returned solution is graded by its actual max
  /// group cost either way; DESIGN.md discusses the deviation.
  bool carry_budgets = true;
};

struct ScgResult {
  std::vector<int> chosen;             // set indices, selection order
  util::DynBitset covered;
  bool feasible = false;               // all coverable elements covered
  double bstar = 0.0;                  // the B* that produced `chosen`
  double max_group_cost = 0.0;         // max over groups of summed chosen costs
  std::vector<double> group_cost;      // per group
  int passes = 0;                      // MCG passes used by the winning run
};

ScgResult scg_solve(const SetSystem& sys, const ScgParams& params = {});

}  // namespace wmcast::setcover
