// Naive eager reference implementations of the set-cover solvers, retained
// for the randomized equivalence suite (tests/fuzz_invariants_test.cpp):
// every pick scans all sets and takes the argmax of gain/cost under the same
// cross-product comparator (core::better_pick) the engine solvers use, with
// ties broken toward the lower set index.
//
// The engine-backed solvers in core/solve.hpp must produce *identical* chosen
// sequences and objective values — these references are the spec they are
// tested against, deliberately simple and allocation-heavy.
#pragma once

#include <span>

#include "wmcast/setcover/greedy.hpp"
#include "wmcast/setcover/mcg.hpp"
#include "wmcast/setcover/scg.hpp"

namespace wmcast::setcover {

GreedyCoverResult greedy_set_cover_reference(const SetSystem& sys,
                                             const util::DynBitset* restrict_to = nullptr);

McgResult mcg_greedy_reference(const SetSystem& sys, std::span<const double> group_budgets,
                               const util::DynBitset* restrict_to = nullptr);

ScgResult scg_solve_reference(const SetSystem& sys, const ScgParams& params = {});

}  // namespace wmcast::setcover
