#include "wmcast/setcover/scg.hpp"

#include <utility>

#include "wmcast/core/solve.hpp"

namespace wmcast::setcover {

ScgResult scg_solve(const SetSystem& sys, const ScgParams& params) {
  const core::CoverageEngine eng = to_engine(sys);
  core::SolveWorkspace ws;
  core::ScgParams p;
  p.budget_cap = params.budget_cap;
  p.grid_points = params.grid_points;
  p.refine_steps = params.refine_steps;
  p.carry_budgets = params.carry_budgets;
  core::ScgResult r = core::scg_cover(eng, ws, p);

  ScgResult res;
  res.chosen = std::move(r.chosen);
  res.covered = std::move(r.covered);
  res.feasible = r.feasible;
  res.bstar = r.bstar;
  res.max_group_cost = r.max_group_cost;
  res.group_cost = std::move(r.group_cost);
  res.passes = r.passes;
  return res;
}

}  // namespace wmcast::setcover
