#include "wmcast/setcover/scg.hpp"

#include <algorithm>
#include <cmath>

#include "wmcast/setcover/mcg.hpp"
#include "wmcast/util/assert.hpp"

namespace wmcast::setcover {

namespace {

/// One full SCG attempt at a fixed B*: iterate the MCG greedy on the shrinking
/// remainder until everything coverable is covered or a pass makes no
/// progress. Returns an infeasible result in the latter case.
/// With carry_budgets, each pass sees only the budget the group has left.
ScgResult run_at_budget(const SetSystem& sys, double bstar, int max_passes,
                        bool carry_budgets) {
  ScgResult res;
  res.bstar = bstar;
  res.covered = util::DynBitset(sys.n_elements());
  res.group_cost.assign(static_cast<size_t>(sys.n_groups()), 0.0);

  std::vector<double> pass_budget(static_cast<size_t>(sys.n_groups()), bstar);
  util::DynBitset remaining = sys.coverable();
  for (int pass = 0; pass < max_passes && remaining.any(); ++pass) {
    if (carry_budgets) {
      for (int g = 0; g < sys.n_groups(); ++g) {
        pass_budget[static_cast<size_t>(g)] =
            std::max(0.0, bstar - res.group_cost[static_cast<size_t>(g)]);
      }
    }
    const McgResult mcg = mcg_greedy(sys, pass_budget, &remaining);
    if (mcg.covered.none()) break;  // no progress possible at this B*
    ++res.passes;
    for (const int j : mcg.chosen) {
      res.chosen.push_back(j);
      res.group_cost[static_cast<size_t>(sys.set(j).group)] += sys.set(j).cost;
    }
    res.covered.or_assign(mcg.covered);
    remaining.andnot_assign(mcg.covered);
  }
  res.feasible = remaining.none();
  res.max_group_cost =
      res.group_cost.empty()
          ? 0.0
          : *std::max_element(res.group_cost.begin(), res.group_cost.end());
  return res;
}

bool better(const ScgResult& a, const ScgResult& b) {
  if (a.feasible != b.feasible) return a.feasible;
  if (!a.feasible) return a.covered.count() > b.covered.count();
  return a.max_group_cost < b.max_group_cost;
}

}  // namespace

ScgResult scg_solve(const SetSystem& sys, const ScgParams& params) {
  util::require(params.budget_cap > 0.0, "scg_solve: budget cap must be positive");
  util::require(params.grid_points >= 2, "scg_solve: need at least two grid points");

  const int n = std::max(1, sys.coverable().count());
  // Theorem 4's pass bound; +8 slack because our per-pass coverage guarantee
  // is on the chosen half, and tiny remainders can take an extra pass or two.
  const int max_passes =
      static_cast<int>(std::ceil(std::log(n) / std::log(8.0 / 7.0))) + 8;

  const double lo = std::max(sys.min_feasible_budget(), 1e-9);
  const double hi = std::max(params.budget_cap, lo);

  ScgResult best = run_at_budget(sys, lo, max_passes, params.carry_budgets);
  double largest_infeasible = best.feasible ? 0.0 : lo;

  const double ratio = hi / lo;
  for (int k = 1; k < params.grid_points; ++k) {
    const double b =
        lo * std::pow(ratio, static_cast<double>(k) / (params.grid_points - 1));
    ScgResult r = run_at_budget(sys, b, max_passes, params.carry_budgets);
    if (!r.feasible) largest_infeasible = std::max(largest_infeasible, b);
    if (better(r, best)) best = std::move(r);
  }

  if (best.feasible) {
    // Bisect between the largest known-infeasible budget and the best
    // feasible one to squeeze the guess further.
    double infeasible_lo = largest_infeasible;
    double feasible_hi = best.bstar;
    for (int step = 0; step < params.refine_steps; ++step) {
      if (feasible_hi - infeasible_lo < 1e-6) break;
      const double mid = infeasible_lo <= 0.0 ? feasible_hi / 2
                                              : 0.5 * (infeasible_lo + feasible_hi);
      ScgResult r = run_at_budget(sys, mid, max_passes, params.carry_budgets);
      if (r.feasible) {
        feasible_hi = mid;
        if (better(r, best)) best = std::move(r);
      } else {
        infeasible_lo = mid;
      }
    }
  }
  return best;
}

}  // namespace wmcast::setcover
