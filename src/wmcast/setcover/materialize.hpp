// Turning a chosen family of candidate sets back into a user-to-AP
// association. Each user is assigned to the AP of the first chosen set that
// covers it; users covered by no chosen set stay unassociated.
//
// Invariant (tested): the materialized load of every AP is at most the summed
// cost of its chosen sets — merging nested sets of one (AP, session) can only
// lower the transmission count, and each member's link rate is at least the
// covering set's tx_rate.
#pragma once

#include <span>

#include "wmcast/setcover/set_system.hpp"
#include "wmcast/wlan/association.hpp"

namespace wmcast::setcover {

wlan::Association materialize(const wlan::Scenario& sc, const SetSystem& sys,
                              std::span<const int> chosen_sets);

/// Engine overload: same first-chosen-set-wins rule over engine set ids.
wlan::Association materialize(const wlan::Scenario& sc, const core::CoverageEngine& eng,
                              std::span<const int> chosen_sets);

}  // namespace wmcast::setcover
