#include "wmcast/setcover/mcg.hpp"

#include <queue>

#include "wmcast/util/assert.hpp"

namespace wmcast::setcover {

namespace {

constexpr double kEps = 1e-12;

struct HeapEntry {
  double ratio;
  int set;

  bool operator<(const HeapEntry& o) const {
    return ratio != o.ratio ? ratio < o.ratio : set > o.set;
  }
};

}  // namespace

McgResult mcg_greedy(const SetSystem& sys, std::span<const double> group_budgets,
                     const util::DynBitset* restrict_to) {
  util::require(static_cast<int>(group_budgets.size()) == sys.n_groups(),
                "mcg_greedy: one budget per group required");

  util::DynBitset remaining = sys.coverable();
  if (restrict_to != nullptr) remaining.and_assign(*restrict_to);
  const util::DynBitset target = remaining;

  std::vector<double> group_cost(static_cast<size_t>(sys.n_groups()), 0.0);

  // Global lazy heap over all usable sets. Popping the global argmax of
  // gain/cost among sets in still-active groups is equivalent to the paper's
  // two-stage argmax (best per group, then best across groups).
  std::priority_queue<HeapEntry> heap;
  for (int j = 0; j < sys.n_sets(); ++j) {
    const auto& s = sys.set(j);
    if (s.cost > group_budgets[static_cast<size_t>(s.group)] + kEps) continue;
    const int gain = s.members.and_count(remaining);
    if (gain > 0) heap.push({gain / s.cost, j});
  }

  McgResult res;
  res.covered_h = util::DynBitset(sys.n_elements());

  while (remaining.any() && !heap.empty()) {
    const HeapEntry top = heap.top();
    heap.pop();
    const auto& s = sys.set(top.set);
    const auto g = static_cast<size_t>(s.group);
    if (group_cost[g] + kEps >= group_budgets[g]) continue;  // group exhausted
    const int gain = s.members.and_count(remaining);
    if (gain <= 0) continue;
    const double ratio = gain / s.cost;
    if (!heap.empty() && ratio < heap.top().ratio) {
      heap.push({ratio, top.set});
      continue;
    }
    group_cost[g] += s.cost;
    res.h.push_back(top.set);
    res.violator.push_back(group_cost[g] > group_budgets[g] + kEps);
    res.covered_h.or_assign(s.members);
    remaining.andnot_assign(s.members);
  }
  res.covered_h.and_assign(target);

  // H1/H2 split; output whichever covers more of the target.
  util::DynBitset cov1(sys.n_elements());
  util::DynBitset cov2(sys.n_elements());
  for (size_t k = 0; k < res.h.size(); ++k) {
    if (res.violator[k]) {
      res.h2.push_back(res.h[k]);
      cov2.or_assign(sys.set(res.h[k]).members);
    } else {
      res.h1.push_back(res.h[k]);
      cov1.or_assign(sys.set(res.h[k]).members);
    }
  }
  cov1.and_assign(target);
  cov2.and_assign(target);
  if (cov2.count() > cov1.count()) {
    res.chosen = res.h2;
    res.covered = std::move(cov2);
  } else {
    res.chosen = res.h1;
    res.covered = std::move(cov1);
  }
  return res;
}

McgResult mcg_greedy_uniform(const SetSystem& sys, double budget,
                             const util::DynBitset* restrict_to) {
  const std::vector<double> budgets(static_cast<size_t>(sys.n_groups()), budget);
  return mcg_greedy(sys, budgets, restrict_to);
}

std::vector<int> mcg_augment(const SetSystem& sys, std::span<const double> group_budgets,
                             std::vector<double>& group_cost, util::DynBitset& covered,
                             const util::DynBitset* restrict_to) {
  util::require(static_cast<int>(group_budgets.size()) == sys.n_groups(),
                "mcg_augment: one budget per group required");
  util::require(static_cast<int>(group_cost.size()) == sys.n_groups(),
                "mcg_augment: one cost entry per group required");

  util::DynBitset remaining = sys.coverable();
  if (restrict_to != nullptr) remaining.and_assign(*restrict_to);
  remaining.andnot_assign(covered);

  std::priority_queue<HeapEntry> heap;
  for (int j = 0; j < sys.n_sets(); ++j) {
    const auto& s = sys.set(j);
    const auto g = static_cast<size_t>(s.group);
    if (group_cost[g] + s.cost > group_budgets[g] + kEps) continue;
    const int gain = s.members.and_count(remaining);
    if (gain > 0) heap.push({gain / s.cost, j});
  }

  std::vector<int> added;
  while (remaining.any() && !heap.empty()) {
    const HeapEntry top = heap.top();
    heap.pop();
    const auto& s = sys.set(top.set);
    const auto g = static_cast<size_t>(s.group);
    if (group_cost[g] + s.cost > group_budgets[g] + kEps) continue;  // no longer fits
    const int gain = s.members.and_count(remaining);
    if (gain <= 0) continue;
    const double ratio = gain / s.cost;
    if (!heap.empty() && ratio < heap.top().ratio) {
      heap.push({ratio, top.set});
      continue;
    }
    group_cost[g] += s.cost;
    added.push_back(top.set);
    covered.or_assign(s.members);
    remaining.andnot_assign(s.members);
  }
  return added;
}

}  // namespace wmcast::setcover
