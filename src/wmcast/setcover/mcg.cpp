#include "wmcast/setcover/mcg.hpp"

#include <utility>

#include "wmcast/core/solve.hpp"

namespace wmcast::setcover {

McgResult mcg_greedy(const SetSystem& sys, std::span<const double> group_budgets,
                     const util::DynBitset* restrict_to) {
  const core::CoverageEngine eng = to_engine(sys);
  core::SolveWorkspace ws;
  core::McgResult r = core::mcg_cover(eng, ws, group_budgets, restrict_to);

  McgResult res;
  res.h = std::move(r.h);
  res.violator.assign(r.violator.begin(), r.violator.end());
  res.h1 = std::move(r.h1);
  res.h2 = std::move(r.h2);
  res.chosen = std::move(r.chosen);
  res.covered = std::move(r.covered);
  res.covered_h = std::move(r.covered_h);
  return res;
}

McgResult mcg_greedy_uniform(const SetSystem& sys, double budget,
                             const util::DynBitset* restrict_to) {
  const std::vector<double> budgets(static_cast<size_t>(sys.n_groups()), budget);
  return mcg_greedy(sys, budgets, restrict_to);
}

std::vector<int> mcg_augment(const SetSystem& sys, std::span<const double> group_budgets,
                             std::vector<double>& group_cost, util::DynBitset& covered,
                             const util::DynBitset* restrict_to) {
  const core::CoverageEngine eng = to_engine(sys);
  core::SolveWorkspace ws;
  return core::mcg_augment(eng, ws, group_budgets, group_cost, covered, restrict_to);
}

}  // namespace wmcast::setcover
