// CostSC: the classic cost-effectiveness greedy for weighted set cover
// (Vazirani), used by Centralized MLA. (ln n + 1)-approximation.
#pragma once

#include <vector>

#include "wmcast/setcover/set_system.hpp"
#include "wmcast/util/bitset.hpp"

namespace wmcast::setcover {

struct GreedyCoverResult {
  std::vector<int> chosen;    // set indices, in selection order
  util::DynBitset covered;    // union of chosen sets
  double total_cost = 0.0;    // sum of chosen set costs
  bool complete = false;      // covered every coverable element of the target
};

/// Runs CostSC. If `restrict_to` is non-null, only those elements need
/// covering (used by SCG's repeated passes); otherwise all coverable elements.
/// Thin policy over core::greedy_cover (maintained-gain lazy heap): every
/// pick equals the eager argmax of gain/cost, ties to the lower set index.
GreedyCoverResult greedy_set_cover(const SetSystem& sys,
                                   const util::DynBitset* restrict_to = nullptr);

}  // namespace wmcast::setcover
